// Package scenario makes fleet failure stories declarative and
// replayable: a YAML file describes a timeline of load profiles and
// injected device health events plus the assertions the run must
// satisfy ("device 1 dies at t=5s under 200 rps; zero incorrect
// responses; the device is back by the end"), and the runner replays
// it against a real fleet of simulated devices on a virtual clock —
// no wall-clock sleeps, so the same file produces the same control
// decisions every run, in tests, CI, and `tridserve -scenario`.
package scenario

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"gputrid/internal/gpusim"
)

// Scenario is one replayable fleet story.
type Scenario struct {
	// Name labels reports; defaults to the file name.
	Name string
	// Seed drives every pseudo-random choice: batch coefficients and
	// per-device fault-injector seeds.
	Seed uint64
	// Tick is the virtual control-loop step; Duration the total
	// virtual run time.
	Tick, Duration time.Duration
	// M, N is the (single) batch shape the scenario serves; Variants
	// distinct batches of that shape rotate through the load.
	M, N     int
	Variants int

	// Devices / InitialActive / MinActive size the fleet.
	Devices, InitialActive, MinActive int
	// Capacity and Queue configure each device's pool.
	Capacity, Queue int

	// Policy knobs (zero = fleet defaults).
	Probation, DrainTimeout, ScaleCooldown time.Duration
	CorrectedECCLimit, RerouteAttempts     int
	ScaleUpAt, ScaleDownAt                 float64

	// FaultRate, when positive, arms each device's deterministic
	// transient-fault injector (seeded per device, one-shot faults the
	// retry layer recovers exactly).
	FaultRate float64

	// Load is the offered-load timeline; phases may overlap (rates
	// add).
	Load []LoadPhase
	// Events is the health-event timeline, applied in `At` order.
	Events []Event

	// Distributed, when non-nil, launches one huge-N distributed solve
	// across the fleet's simulated interconnect fabric mid-run.
	Distributed *DistSpec

	// Gray, when non-nil, arms gray failures on the distributed fabric
	// (a silent straggler, a flaky link) and tunes the fleet's
	// gray-failure detector.
	Gray *GraySpec

	// Assert is evaluated after the run.
	Assert Assertions
}

// DistSpec is the scenario's distributed-solve stanza: one batch of
// shape M×N is solved across every servable device at virtual time At,
// with the listed topology devices armed to die permanently on their
// first kernel launch of the solve. The runner busy-waits until every
// armed death has surfaced in the health feed, then runs the control
// loop — so the cordon provably lands while the distributed solve is
// still in flight — and verifies the completed solution bitwise
// against a fault-free reference.
type DistSpec struct {
	// M, N shape the distributed batch; N should dwarf the serving
	// shape (that is the point of distributing).
	M, N int
	// At is the launch instant (virtual time).
	At time.Duration
	// Victims lists the topology devices armed to die mid-solve.
	Victims []int
	// Count launches that many distributed solves (sequentially, the
	// first at At, the rest Every apart); 0 means 1. Repeated solves
	// are how gray failures accumulate detectable evidence.
	Count int
	// Every spaces repeated solves; 0 means one solve per tick.
	Every time.Duration
}

func (ds *DistSpec) count() int {
	if ds.Count <= 0 {
		return 1
	}
	return ds.Count
}

// GraySpec arms gray failures — failures no driver event announces —
// on the distributed fabric, and tunes the detector that must catch
// them from statistical evidence alone.
type GraySpec struct {
	// Straggler, when >= 0, is the topology device silently slowed by
	// StragglerFactor (its modeled kernel time multiplies, no health
	// event fires, answers stay bit-exact).
	Straggler       int
	StragglerFactor float64
	// Flaky, when >= 0, is the device whose links corrupt transfers at
	// FlakyRate (seeded by the scenario seed; every corruption must be
	// caught by the solver's checksums and repaired in place).
	Flaky     int
	FlakyRate float64
	// Detector knobs (zero = fleet defaults, see fleet.GrayPolicy).
	StragglerRatio float64
	MinSamples     int
	IntegrityLimit int
	// DisableHedge turns off straggler hedging in distributed solves.
	DisableHedge bool
}

// LoadPhase offers `RPS` requests per virtual second over [From, To).
type LoadPhase struct {
	From, To time.Duration
	RPS      float64
}

// Event injects one health event at virtual time At.
type Event struct {
	At      time.Duration
	Device  int
	Kind    gpusim.HealthKind
	XID     int
	Temp    float64
	Message string
}

// FinalState asserts a device's state at the end of the run; any of
// the listed states passes (e.g. "active|probation" when the exact
// probation expiry tick is not the point of the scenario).
type FinalState struct {
	Device int
	States []fleet_states
}

type fleet_states = string

// Assertions are the scenario's pass/fail conditions. The zero value
// demands only correctness: MaxIncorrect is always 0 — a scenario can
// tolerate rejections, but never a wrong answer.
type Assertions struct {
	// MinServed is the minimum number of successfully served requests.
	MinServed int
	// MaxRejectedFrac bounds rejected/issued (unset = 1.0).
	MaxRejectedFrac float64
	rejectedSet     bool
	// Cordons / ScaleUps / ScaleDowns / ForcedDrains, when set, bound
	// the control-plane action counters.
	Cordons, MaxForcedDrains   *int
	MinScaleUps, MinScaleDowns int
	// MinRerouted, when set, demands at least that many re-routes
	// (proving the death actually happened under traffic).
	MinRerouted int
	// MinDistSolves demands at least that many completed distributed
	// solves; DistDeaths, when set, pins the exact number of devices
	// declared dead mid-distributed-solve; MinDistMigrations demands at
	// least that many slab migrations (proving the deaths cost live
	// work, not idle slabs).
	MinDistSolves     int
	DistDeaths        *int
	MinDistMigrations int
	// MinIntegrityRetries demands the corruption provably happened and
	// was repaired (checksum-mismatched transfers re-exchanged);
	// MinHedges demands the straggler provably triggered speculative
	// slab re-launches; MaxDistDegraded bounds slabs degraded to the
	// host path (unset = unbounded; 0 pins the bitwise-identity story).
	MinIntegrityRetries int
	MinHedges           int
	MaxDistDegraded     *int
	// CordonedBy demands each listed device was cordoned (or dead) no
	// later than the given control-loop tick — the detection-latency
	// bound on the gray-failure detector.
	CordonedBy []CordonDeadline
	// FinalStates pins device states at the end of the run.
	FinalStates []FinalState
}

// CordonDeadline is one detection-latency assertion: Device must have
// left the servable states by control-loop tick Tick (0-based).
type CordonDeadline struct {
	Device, Tick int
}

// Load reads and decodes a scenario file.
func Load(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	sc, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if sc.Name == "" {
		base := path
		if i := strings.LastIndexByte(base, '/'); i >= 0 {
			base = base[i+1:]
		}
		sc.Name = strings.TrimSuffix(base, ".yaml")
	}
	return sc, nil
}

// Decode parses scenario YAML and applies defaults and validation.
func Decode(data []byte) (*Scenario, error) {
	root, lines, err := parseYAML(data)
	if err != nil {
		return nil, err
	}
	d := &decoder{lines: lines}
	top := d.section(root, "")

	sc := &Scenario{
		Name:     top.str("name", ""),
		Seed:     uint64(top.num("seed", 1)),
		Tick:     top.dur("tick", 100*time.Millisecond),
		Duration: top.dur("duration", 10*time.Second),
		Variants: top.num("variants", 4),
	}

	shape := d.section(top.child("shape"), "shape")
	sc.M = shape.num("m", 8)
	sc.N = shape.num("n", 64)

	dev := d.section(top.child("devices"), "devices")
	sc.Devices = dev.num("count", 3)
	sc.InitialActive = dev.num("initial", 0)
	sc.MinActive = dev.num("min_active", 0)

	pool := d.section(top.child("pool"), "pool")
	sc.Capacity = pool.num("capacity", 2)
	sc.Queue = pool.num("queue", 0)

	pol := d.section(top.child("policy"), "policy")
	sc.Probation = pol.dur("probation", 0)
	sc.DrainTimeout = pol.dur("drain_timeout", 0)
	sc.ScaleCooldown = pol.dur("scale_cooldown", 0)
	sc.CorrectedECCLimit = pol.num("corrected_ecc_limit", 0)
	sc.RerouteAttempts = pol.num("reroute_attempts", 0)
	sc.ScaleUpAt = pol.flt("scale_up_at", 0)
	sc.ScaleDownAt = pol.flt("scale_down_at", 0)

	faults := d.section(top.child("faults"), "faults")
	sc.FaultRate = faults.flt("rate", 0)

	for i, item := range top.list("load") {
		ph := d.section(item, fmt.Sprintf("load[%d]", i))
		sc.Load = append(sc.Load, LoadPhase{
			From: ph.dur("from", 0),
			To:   ph.dur("to", sc.Duration),
			RPS:  ph.flt("rps", 0),
		})
	}
	for i, item := range top.list("events") {
		ev := d.section(item, fmt.Sprintf("events[%d]", i))
		e := Event{
			At:      ev.dur("at", 0),
			Device:  ev.num("device", 0),
			XID:     ev.num("xid", 0),
			Temp:    ev.flt("temp", 0),
			Message: ev.str("message", ""),
		}
		kind := ev.str("kind", "")
		if kind != "" {
			k, err := gpusim.ParseHealthKind(kind)
			if err != nil {
				d.fail("events[%d]: %v", i, err)
			} else {
				e.Kind = k
			}
		} else {
			d.fail("events[%d]: missing kind", i)
		}
		sc.Events = append(sc.Events, e)
	}
	sort.SliceStable(sc.Events, func(i, j int) bool { return sc.Events[i].At < sc.Events[j].At })

	if v := top.child("distributed"); v != nil {
		ds := d.section(v, "distributed")
		spec := &DistSpec{
			M:  ds.num("m", 2),
			N:  ds.num("n", 1025),
			At: ds.dur("at", 0),
		}
		for i, item := range ds.list("victims") {
			str, ok := item.(string)
			if !ok {
				d.fail("distributed.victims[%d]: expected a device index", i)
				continue
			}
			n, err := strconv.Atoi(str)
			if err != nil {
				d.fail("distributed.victims[%d]: %q is not an integer", i, str)
				continue
			}
			spec.Victims = append(spec.Victims, n)
		}
		spec.Count = ds.num("count", 0)
		spec.Every = ds.dur("every", 0)
		sc.Distributed = spec
	}

	if v := top.child("gray"); v != nil {
		g := d.section(v, "gray")
		spec := &GraySpec{Straggler: -1, Flaky: -1}
		if sv := g.child("straggler"); sv != nil {
			s := d.section(sv, "gray.straggler")
			spec.Straggler = s.num("device", 0)
			spec.StragglerFactor = s.flt("factor", 10)
		}
		if fv := g.child("flaky"); fv != nil {
			fs := d.section(fv, "gray.flaky")
			spec.Flaky = fs.num("device", 0)
			spec.FlakyRate = fs.flt("rate", 0.3)
		}
		spec.StragglerRatio = g.flt("straggler_ratio", 0)
		spec.MinSamples = g.num("min_samples", 0)
		spec.IntegrityLimit = g.num("integrity_limit", 0)
		spec.DisableHedge = g.str("disable_hedge", "") == "true"
		sc.Gray = spec
	}

	as := d.section(top.child("assert"), "assert")
	sc.Assert.MinServed = as.num("min_served", 0)
	sc.Assert.MaxRejectedFrac, sc.Assert.rejectedSet = 1, false
	if f, ok := as.fltOpt("max_rejected_frac"); ok {
		sc.Assert.MaxRejectedFrac, sc.Assert.rejectedSet = f, true
	}
	if n, ok := as.numOpt("cordons"); ok {
		sc.Assert.Cordons = &n
	}
	if n, ok := as.numOpt("max_forced_drains"); ok {
		sc.Assert.MaxForcedDrains = &n
	}
	sc.Assert.MinScaleUps = as.num("min_scale_ups", 0)
	sc.Assert.MinScaleDowns = as.num("min_scale_downs", 0)
	sc.Assert.MinRerouted = as.num("min_rerouted", 0)
	sc.Assert.MinDistSolves = as.num("min_dist_solves", 0)
	if n, ok := as.numOpt("dist_deaths"); ok {
		sc.Assert.DistDeaths = &n
	}
	sc.Assert.MinDistMigrations = as.num("min_dist_migrations", 0)
	sc.Assert.MinIntegrityRetries = as.num("min_integrity_retries", 0)
	sc.Assert.MinHedges = as.num("min_hedges", 0)
	if n, ok := as.numOpt("max_dist_degraded"); ok {
		sc.Assert.MaxDistDegraded = &n
	}
	for i, item := range as.list("cordoned_by") {
		cb := d.section(item, fmt.Sprintf("assert.cordoned_by[%d]", i))
		sc.Assert.CordonedBy = append(sc.Assert.CordonedBy, CordonDeadline{
			Device: cb.num("device", 0),
			Tick:   cb.num("tick", 0),
		})
	}
	for i, item := range as.list("final_states") {
		fs := d.section(item, fmt.Sprintf("assert.final_states[%d]", i))
		sc.Assert.FinalStates = append(sc.Assert.FinalStates, FinalState{
			Device: fs.num("device", 0),
			States: strings.Split(fs.str("state", "active"), "|"),
		})
	}

	d.finish()
	if d.err != nil {
		return nil, d.err
	}
	return sc, sc.validate()
}

func (sc *Scenario) validate() error {
	switch {
	case sc.Tick <= 0 || sc.Duration <= 0:
		return fmt.Errorf("scenario: tick and duration must be positive")
	case sc.Duration/sc.Tick > 100_000:
		return fmt.Errorf("scenario: %v/%v is over 100000 ticks", sc.Duration, sc.Tick)
	case sc.M < 1 || sc.N < 2:
		return fmt.Errorf("scenario: bad shape %dx%d", sc.M, sc.N)
	case sc.Devices < 1 || sc.Devices > 64:
		return fmt.Errorf("scenario: devices = %d, want 1..64", sc.Devices)
	case sc.Variants < 1:
		return fmt.Errorf("scenario: variants must be ≥ 1")
	case len(sc.Load) == 0:
		return fmt.Errorf("scenario: no load phases")
	}
	for _, ev := range sc.Events {
		if ev.Device < 0 || ev.Device >= sc.Devices {
			return fmt.Errorf("scenario: event device %d out of range", ev.Device)
		}
	}
	for _, fs := range sc.Assert.FinalStates {
		if fs.Device < 0 || fs.Device >= sc.Devices {
			return fmt.Errorf("scenario: final_states device %d out of range", fs.Device)
		}
	}
	if ds := sc.Distributed; ds != nil {
		if ds.M < 1 || ds.N < 2*sc.Devices-1 {
			return fmt.Errorf("scenario: distributed shape %dx%d too small for %d slabs", ds.M, ds.N, sc.Devices)
		}
		if ds.At < 0 || ds.At >= sc.Duration {
			return fmt.Errorf("scenario: distributed.at %v outside the run", ds.At)
		}
		for _, v := range ds.Victims {
			if v < 0 || v >= sc.Devices {
				return fmt.Errorf("scenario: distributed victim %d out of range", v)
			}
		}
		if len(ds.Victims) >= sc.Devices {
			return fmt.Errorf("scenario: all %d devices are victims — no survivor to migrate to", sc.Devices)
		}
		if ds.Count > 1 {
			every := ds.Every
			if every <= 0 {
				every = sc.Tick
			}
			if last := ds.At + time.Duration(ds.Count-1)*every; last >= sc.Duration {
				return fmt.Errorf("scenario: distributed solve %d would launch at %v, outside the run", ds.Count-1, last)
			}
		}
	}
	if g := sc.Gray; g != nil {
		if sc.Distributed == nil {
			return fmt.Errorf("scenario: gray failures need a distributed stanza — the detector's only evidence is distributed-solve reports")
		}
		if g.Straggler < 0 && g.Flaky < 0 {
			return fmt.Errorf("scenario: gray stanza arms neither a straggler nor a flaky link")
		}
		if g.Straggler >= sc.Devices {
			return fmt.Errorf("scenario: gray straggler device %d out of range", g.Straggler)
		}
		if g.Straggler >= 0 && g.StragglerFactor <= 1 {
			return fmt.Errorf("scenario: gray straggler factor %g must be > 1", g.StragglerFactor)
		}
		if g.Flaky >= sc.Devices {
			return fmt.Errorf("scenario: gray flaky device %d out of range", g.Flaky)
		}
		if g.Flaky >= 0 && (g.FlakyRate <= 0 || g.FlakyRate >= 1) {
			return fmt.Errorf("scenario: gray flaky rate %g must be in (0, 1)", g.FlakyRate)
		}
	}
	ticks := int(sc.Duration / sc.Tick)
	for _, cb := range sc.Assert.CordonedBy {
		if cb.Device < 0 || cb.Device >= sc.Devices {
			return fmt.Errorf("scenario: cordoned_by device %d out of range", cb.Device)
		}
		if cb.Tick < 0 || cb.Tick >= ticks {
			return fmt.Errorf("scenario: cordoned_by tick %d outside the run's %d ticks", cb.Tick, ticks)
		}
	}
	return nil
}

// decoder accumulates strict-decode errors: unknown keys (typos in a
// scenario file must fail, not silently pass the run) and conversion
// failures.
type decoder struct {
	err      error
	sections []*section
	// lines maps key paths to source lines (from parseYAML), so an
	// unknown-key error points at the exact line holding the typo.
	lines map[string]int
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("scenario: "+format, args...)
	}
}

// section wraps one YAML map with typed, defaulted accessors and
// used-key tracking.
type section struct {
	d    *decoder
	path string
	m    map[string]any
	used map[string]bool
}

func (d *decoder) section(v any, path string) *section {
	s := &section{d: d, path: path, used: make(map[string]bool)}
	switch m := v.(type) {
	case nil:
		s.m = map[string]any{}
	case map[string]any:
		s.m = m
	case string:
		if m == "" { // `key:` with no body
			s.m = map[string]any{}
		} else {
			d.fail("%s: expected a map, got %q", path, m)
			s.m = map[string]any{}
		}
	default:
		d.fail("%s: expected a map", path)
		s.m = map[string]any{}
	}
	d.sections = append(d.sections, s)
	return s
}

// finish reports unknown keys across every section, each pointing at
// the source line that holds the typo.
func (d *decoder) finish() {
	for _, s := range d.sections {
		var unknown []string
		for k := range s.m {
			if !s.used[k] {
				unknown = append(unknown, k)
			}
		}
		sort.Strings(unknown)
		for _, k := range unknown {
			if no, ok := d.lines[joinPath(s.path, k)]; ok {
				d.fail("line %d: %s: unknown key %q", no, s.keyPath(k), k)
			} else {
				d.fail("%s: unknown key %q", s.keyPath(k), k)
			}
		}
	}
}

func (s *section) keyPath(k string) string {
	if s.path == "" {
		return k
	}
	return s.path
}

func (s *section) raw(key string) (any, bool) {
	v, ok := s.m[key]
	if ok {
		s.used[key] = true
	}
	return v, ok
}

func (s *section) child(key string) any {
	v, _ := s.raw(key)
	return v
}

func (s *section) list(key string) []any {
	v, ok := s.raw(key)
	if !ok {
		return nil
	}
	l, ok := v.([]any)
	if !ok {
		s.d.fail("%s.%s: expected a list", s.path, key)
		return nil
	}
	return l
}

func (s *section) scalar(key string) (string, bool) {
	v, ok := s.raw(key)
	if !ok {
		return "", false
	}
	str, ok := v.(string)
	if !ok {
		s.d.fail("%s.%s: expected a scalar", s.path, key)
		return "", false
	}
	return str, true
}

func (s *section) str(key, def string) string {
	if v, ok := s.scalar(key); ok {
		return v
	}
	return def
}

func (s *section) num(key string, def int) int {
	n, ok := s.numOpt(key)
	if !ok {
		return def
	}
	return n
}

func (s *section) numOpt(key string) (int, bool) {
	v, ok := s.scalar(key)
	if !ok {
		return 0, false
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		s.d.fail("%s.%s: %q is not an integer", s.path, key, v)
		return 0, false
	}
	return n, true
}

func (s *section) flt(key string, def float64) float64 {
	f, ok := s.fltOpt(key)
	if !ok {
		return def
	}
	return f
}

func (s *section) fltOpt(key string) (float64, bool) {
	v, ok := s.scalar(key)
	if !ok {
		return 0, false
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		s.d.fail("%s.%s: %q is not a number", s.path, key, v)
		return 0, false
	}
	return f, true
}

func (s *section) dur(key string, def time.Duration) time.Duration {
	v, ok := s.scalar(key)
	if !ok {
		return def
	}
	d, err := time.ParseDuration(v)
	if err != nil {
		s.d.fail("%s.%s: %q is not a duration", s.path, key, v)
		return def
	}
	return d
}
