package fleet

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"gputrid"
)

// Backend is the failure-domain surface the fleet needs from one
// device's serving pool. *gputrid.Pool[float64] satisfies it directly;
// tests substitute deterministic fakes.
type Backend interface {
	// Solve serves one batch on this device.
	Solve(ctx context.Context, b *gputrid.Batch[float64]) (*gputrid.PoolResult[float64], error)
	// SolveMegabatch serves one coalesced megabatch on this device
	// through its pool's dedicated megabatch station; per-system
	// outcomes land in mb.Verdicts, a non-nil error fails the whole
	// flight (and re-routes it).
	SolveMegabatch(ctx context.Context, mb *gputrid.Megabatch[float64]) error
	// Warm pre-builds the device's solver complement for a shape.
	Warm(m, n int) error
	// Stats snapshots the device pool's congestion and breaker.
	Stats() gputrid.PoolStats
	// ServiceTime is the pool's per-shape service-time estimate.
	ServiceTime(m, n int) (time.Duration, bool)
	// Breaker exposes the pool's circuit-breaker state, so the router
	// can prefer devices whose device path is healthy.
	Breaker() gputrid.BreakerSnapshot
	// Close gracefully drains the device: admissions stop, in-flight
	// solves finish, and ctx's deadline force-cancels stragglers. This
	// is the cordon path — the fleet reuses the pool's drain protocol
	// verbatim.
	Close(ctx context.Context) error
}

// BackendFactory builds the serving pool for one device. The fleet
// calls it at construction and again when a dead device heals (the
// healed device gets a *fresh* pool: a real GPU reset wipes device
// state, so stale warmed solvers must not survive it).
type BackendFactory func(id int) (Backend, error)

// DeviceState is the cordon/drain state machine position of one device.
//
//	           scale-up            fatal event
//	Standby ──────────────► Active ───────────► Cordoned
//	   ▲    ◄──────────────   ▲  ▲               │ drain
//	   │      scale-down      │  │               ▼
//	   │        (drain)       │  │ probation    Dead
//	   │                      │  │ expires       │ healed event
//	   │           thermal    │  │               ▼ (fresh pool)
//	   │   ┌──────────────────┘  └────────── Probation
//	   │   ▼           healed                    ▲
//	   │ Deprioritized ──────────────────────────┘
//	   └── (fleet Close drains every state)
type DeviceState int

const (
	// StateActive: healthy, fully in the routing set.
	StateActive DeviceState = iota
	// StateProbation: recently healed; serves traffic, but any health
	// event short of recovery cordons it immediately, and only a clean
	// probation period promotes it back to Active.
	StateProbation
	// StateDeprioritized: thermally throttled; correct but slow, so it
	// receives traffic only when no Active/Probation device can.
	StateDeprioritized
	// StateCordoned: a fatal event arrived; no new work, the graceful
	// drain of its pool is in progress.
	StateCordoned
	// StateDead: drained after a fatal event; waits for a healed event.
	StateDead
	// StateStandby: drained by scale-down; healthy and eligible for
	// reactivation by scale-up.
	StateStandby
)

// String names the state.
func (s DeviceState) String() string {
	switch s {
	case StateActive:
		return "active"
	case StateProbation:
		return "probation"
	case StateDeprioritized:
		return "deprioritized"
	case StateCordoned:
		return "cordoned"
	case StateDead:
		return "dead"
	case StateStandby:
		return "standby"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// servable reports whether the router may send new work to a device in
// this state at all (Deprioritized is servable, merely last-choice).
func (s DeviceState) servable() bool {
	return s == StateActive || s == StateProbation || s == StateDeprioritized
}

// device is one failure domain: a serving pool plus its control-plane
// state. State fields are guarded by the fleet's mutex; counters are
// atomics so the solve path never takes the fleet lock while solving.
type device struct {
	id      int
	backend Backend

	// Guarded by Fleet.mu.
	state DeviceState
	// probationUntil is when a Probation device may promote to Active.
	probationUntil time.Time
	// correctedECC accumulates HealthECCCorrected events; crossing the
	// policy threshold escalates to a cordon.
	correctedECC int
	// wantHeal remembers a healed event that arrived while the device
	// was still draining; applied once the drain completes.
	wantHeal bool
	// draining is true from cordon until the drain goroutine finishes;
	// drainTarget is the state the device lands in afterwards (Dead for
	// health cordons, Standby for scale-downs).
	draining    bool
	drainTarget DeviceState
	// lastTransition stamps the most recent state change (clock time).
	lastTransition time.Time

	// Data-plane counters (atomic; read by stats and the router).
	inflight atomic.Int64
	served   atomic.Uint64
	failed   atomic.Uint64
}

// DeviceStats is the observable state of one device.
type DeviceStats struct {
	ID    int
	State DeviceState
	// InFlight is the device's routed load in systems: direct requests
	// weigh 1, a coalesced megabatch weighs its system count — so a
	// device holding one 48-system flight reads as busier than one
	// holding three singleton requests.
	InFlight int64
	// Served and Failed count completed fleet requests by outcome.
	Served, Failed uint64
	// CorrectedECC is the accumulated corrected-ECC event count.
	CorrectedECC int
	// GrayRatio is the gray-failure detector's EWMA per-slab modeled
	// latency ratio vs. the fleet median (0 until the device appears
	// in a distributed solve); IntegrityRetries and Hedged accumulate
	// the device's checksum-mismatch re-exchanges and hedged-away
	// slabs across distributed solves.
	GrayRatio        float64
	IntegrityRetries int
	Hedged           int
	// QueueDepth and Breaker mirror the device pool (zero values while
	// the device has no live pool — Dead/Standby after drain).
	QueueDepth int
	Breaker    gputrid.BreakerState
}
