package fleet

import "time"

// Autoscaling. The scaler watches two interval load signals the router
// records between Ticks — how much work was routed (offered, in
// systems: direct requests weigh 1, megabatches their system count)
// and the peak concurrent in-flight count — and compares the larger of the
// two against the fleet's serving slots: the summed pool Capacity of
// every Active and Probation device (Deprioritized devices still serve
// but are not counted as capacity, which biases the fleet toward
// scaling *up* while a device is thermally throttled).
//
//	load/slots > ScaleUpAt   → activate one Standby device
//	load/slots < ScaleDownAt → drain one Active device to Standby
//
// Both directions respect ScaleCooldown (fleet-clock time) and the
// scaler never drops below MinActive nor scales past the devices that
// exist. One device per Tick, in each direction at most: watermark
// scaling oscillates if it reacts to its own transient, and the
// cooldown plus one-step moves are the standard damping.
func (c Config) scaleUpAt() float64 {
	if c.ScaleUpAt <= 0 {
		return 1.5
	}
	return c.ScaleUpAt
}

func (c Config) scaleDownAt() float64 {
	if c.ScaleDownAt <= 0 {
		return 0.25
	}
	return c.ScaleDownAt
}

func (c Config) scaleCooldown() time.Duration {
	if c.ScaleCooldown <= 0 {
		return time.Second
	}
	return c.ScaleCooldown
}

func (c Config) slotCapacity() int {
	// Mirrors pool.Config.capacity()'s default.
	if c.Pool.Capacity <= 0 {
		return 2
	}
	return c.Pool.Capacity
}

// scaleLocked evaluates one autoscaling step (f.mu held by Tick) and
// resets the interval load signals.
func (f *Fleet) scaleLocked(now time.Time) {
	offered, peak := f.offeredInterval, f.peakInterval
	f.offeredInterval, f.peakInterval = 0, 0

	load := float64(offered)
	if p := float64(peak); p > load {
		load = p
	}

	serving := 0 // Active + Probation: counted capacity
	var standby, active *device
	for _, d := range f.devices {
		switch d.state {
		case StateActive, StateProbation:
			serving++
			// Scale-down victim: the highest-id Active device with the
			// least in-flight work (draining a busy device costs more).
			if d.state == StateActive &&
				(active == nil || d.inflight.Load() < active.inflight.Load() ||
					(d.inflight.Load() == active.inflight.Load() && d.id > active.id)) {
				active = d
			}
		case StateStandby:
			if standby == nil || d.id < standby.id {
				standby = d
			}
		}
	}
	if serving == 0 && standby != nil {
		// Every serving device is gone (mass cordon): reactivate
		// immediately, cooldown or not — availability beats damping.
		f.scaleUps.Add(1)
		f.lastScale = now
		f.reviveLocked(standby, StateActive, now)
		return
	}
	if now.Sub(f.lastScale) < f.cfg.scaleCooldown() {
		return
	}
	slots := float64(serving * f.cfg.slotCapacity())
	if slots == 0 {
		return
	}

	switch {
	case load/slots > f.cfg.scaleUpAt() && standby != nil:
		f.scaleUps.Add(1)
		f.lastScale = now
		f.reviveLocked(standby, StateActive, now)
	case load/slots < f.cfg.scaleDownAt() && serving > f.cfg.minActive() && active != nil:
		f.scaleDowns.Add(1)
		f.lastScale = now
		f.cordonLocked(active, StateStandby, now)
	}
}
