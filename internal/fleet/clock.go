package fleet

import (
	"time"

	"gputrid/internal/clock"
)

// Clock abstracts time for the fleet control loop. Every policy
// decision that involves elapsed time — probation expiry, autoscale
// cooldowns, health-event timestamps — reads this clock, never
// time.Now directly, so a scenario driven by a VirtualClock replays
// the exact same decision sequence on every run. (Wall-clock still
// governs the *data plane* — solve durations, drain force-cancel
// budgets — which affects only how fast a run finishes, not which
// control decisions it makes.)
//
// The implementations live in the shared internal/clock package so the
// pool layer can take the same injected time source; these aliases
// keep the fleet-level API unchanged.
type Clock = clock.Clock

// WallClock is the production clock.
type WallClock = clock.WallClock

// VirtualClock is a manually advanced clock for deterministic
// scenarios and tests: time moves only when the driver says so.
type VirtualClock = clock.VirtualClock

// NewVirtualClock starts a virtual clock at the given instant.
func NewVirtualClock(start time.Time) *VirtualClock {
	return clock.NewVirtualClock(start)
}
