package bench

import (
	"fmt"

	"gputrid/internal/core"
	"gputrid/internal/tiledpcr"
	"gputrid/internal/workload"
)

// Ablations returns the IDs of the ablation studies — experiments that
// quantify the paper's individual design choices rather than reproduce
// a specific figure.
func Ablations() []string {
	return []string{
		"ablation-naive", "ablation-fusion", "ablation-blocks",
		"ablation-c", "ablation-mux",
	}
}

// RunAblation executes one ablation by ID.
func (e *Env) RunAblation(id string) (*Table, error) {
	switch id {
	case "ablation-naive":
		return e.AblationNaiveTiling()
	case "ablation-fusion":
		return e.AblationFusion()
	case "ablation-blocks":
		return e.AblationBlocks()
	case "ablation-c":
		return e.AblationSubTileScale()
	case "ablation-mux":
		return e.AblationMultiplex()
	default:
		return nil, fmt.Errorf("bench: unknown ablation %q (have %v)", id, Ablations())
	}
}

// AblationNaiveTiling quantifies Fig. 7's argument: naive tiling pays
// f(k) halo loads and g(k) warm-up eliminations per boundary, so
// fine-grained tiles blow up the overhead that the buffered sliding
// window eliminates.
func (e *Env) AblationNaiveTiling() (*Table, error) {
	t := &Table{
		ID:    "ablation-naive",
		Title: "Naive tiling redundancy vs sliding window (N=4096, k=6)",
		Header: []string{"tileRows", "tiles", "loads", "redundant",
			"elims", "warmup", "load overhead", "elim overhead"},
		Notes: []string{"sliding window = single tile row: zero redundancy by construction"},
	}
	n, k := e.scale(4096), 6
	s := workload.System[float64](workload.DiagDominant, n, e.Seed)
	for _, tile := range []int{n, 1024, 256, 128, 64} {
		if tile > n {
			continue
		}
		_, bs := tiledpcr.ReduceBlocked(s, k, tile)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(tile), fmt.Sprint(bs.Tiles),
			fmt.Sprint(bs.RawLoads), fmt.Sprint(bs.RedundantLoads),
			fmt.Sprint(bs.Eliminations), fmt.Sprint(bs.WarmupElims),
			fmt.Sprintf("%.1f%%", 100*float64(bs.RedundantLoads)/float64(bs.MinimalLoads)),
			fmt.Sprintf("%.1f%%", 100*float64(bs.Eliminations-bs.MinimalElims)/float64(bs.MinimalElims)),
		})
	}
	return t, nil
}

// AblationFusion compares the two-kernel hybrid against the §III.C
// fused kernel: global transactions saved vs occupancy lost.
func (e *Env) AblationFusion() (*Table, error) {
	t := &Table{
		ID:     "ablation-fusion",
		Title:  "Kernel fusion (§III.C): traffic saved vs occupancy lost",
		Header: []string{"MxN", "k", "unfused[ms]", "fused[ms]", "tx unfused", "tx fused", "tx saved"},
	}
	for _, sh := range []struct{ m, n, k int }{
		{4, 65536, 8}, {16, 16384, 7}, {64, 4096, 6}, {256, 1024, 6},
	} {
		m, n := sh.m, e.scale(sh.n)
		b := workload.Batch[float64](workload.DiagDominant, m, n, e.Seed)
		_, ru, err := core.Solve(core.Config{Device: e.GPU, K: sh.k, BlocksPerSystem: 1}, b)
		if err != nil {
			return nil, err
		}
		_, rf, err := core.Solve(core.Config{Device: e.GPU, K: sh.k, Fuse: true}, b)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%dx%d", m, n), fmt.Sprint(sh.k),
			ms(core.ModeledTime[float64](e.GPU, ru)),
			ms(core.ModeledTime[float64](e.GPU, rf)),
			fmt.Sprint(ru.Stats.Transactions()), fmt.Sprint(rf.Stats.Transactions()),
			fmt.Sprintf("%.0f%%", 100*(1-float64(rf.Stats.Transactions())/float64(ru.Stats.Transactions()))),
		})
	}
	return t, nil
}

// AblationBlocks sweeps blocks-per-system for one large system
// (Fig. 11(b)): more blocks buy parallelism at the price of halo
// redundancy per boundary.
func (e *Env) AblationBlocks() (*Table, error) {
	t := &Table{
		ID:     "ablation-blocks",
		Title:  "Blocks per system for M=1 (Fig. 11(b))",
		Header: []string{"blocks", "modeled[ms]", "loadedMB", "eliminations"},
	}
	n := e.scale(2 * 1024 * 1024)
	b := workload.Batch[float64](workload.DiagDominant, 1, n, e.Seed)
	for _, g := range []int{1, 2, 4, 8, 15, 30, 60} {
		_, rep, err := core.Solve(core.Config{Device: e.GPU, K: 8, BlocksPerSystem: g}, b)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(g), ms(core.ModeledTime[float64](e.GPU, rep)),
			fmt.Sprintf("%.2f", float64(rep.Stats.LoadedBytes)/(1<<20)),
			fmt.Sprint(rep.Stats.Eliminations),
		})
	}
	return t, nil
}

// AblationSubTileScale sweeps the Table I scale factor c: larger
// sub-tiles amortize barriers but grow the shared footprint.
func (e *Env) AblationSubTileScale() (*Table, error) {
	t := &Table{
		ID:     "ablation-c",
		Title:  "Sub-tile scale factor c (Table I) at M=32, N=16384, k=6",
		Header: []string{"c", "modeled[ms]", "barriers", "shared/block[B]", "occupancy"},
	}
	m, n, k := 32, e.scale(16384), 6
	b := workload.Batch[float64](workload.DiagDominant, m, n, e.Seed)
	for _, c := range []int{1, 2, 4, 8} {
		_, rep, err := core.Solve(core.Config{Device: e.GPU, K: k, C: c, BlocksPerSystem: 1}, b)
		if err != nil {
			return nil, err
		}
		pcrStats := rep.Kernels[0]
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(c), ms(core.ModeledTime[float64](e.GPU, rep)),
			fmt.Sprint(pcrStats.Barriers), fmt.Sprint(pcrStats.SharedPerBlock),
			fmt.Sprint(e.GPU.Occupancy(pcrStats.ThreadsPerBlock, pcrStats.SharedPerBlock)),
		})
	}
	return t, nil
}

// AblationMultiplex sweeps systems-per-block (Fig. 11(c)).
func (e *Env) AblationMultiplex() (*Table, error) {
	t := &Table{
		ID:     "ablation-mux",
		Title:  "Systems per block q (Fig. 11(c)) at M=8, N=65536, k=6",
		Header: []string{"q", "modeled[ms]", "blocks", "shared/block[B]", "occupancy"},
	}
	m, n, k := 8, e.scale(65536), 6
	b := workload.Batch[float64](workload.DiagDominant, m, n, e.Seed)
	for _, q := range []int{1, 2, 4} {
		cfg := core.Config{Device: e.GPU, K: k, SystemsPerBlock: q}
		if q == 1 {
			cfg = core.Config{Device: e.GPU, K: k, BlocksPerSystem: 1}
		}
		_, rep, err := core.Solve(cfg, b)
		if err != nil {
			return nil, err
		}
		pcrStats := rep.Kernels[0]
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(q), ms(core.ModeledTime[float64](e.GPU, rep)),
			fmt.Sprint(pcrStats.Blocks), fmt.Sprint(pcrStats.SharedPerBlock),
			fmt.Sprint(e.GPU.Occupancy(pcrStats.ThreadsPerBlock, pcrStats.SharedPerBlock)),
		})
	}
	return t, nil
}
