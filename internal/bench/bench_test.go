package bench

import (
	"fmt"
	"strings"
	"testing"
)

func fmtSscan(s string, v *float64) (int, error) { return fmt.Sscan(s, v) }

func quickEnv() *Env {
	e := DefaultEnv()
	e.Scale = 16
	return e
}

func TestExperimentIDsAllRun(t *testing.T) {
	e := quickEnv()
	for _, id := range Experiments() {
		switch id {
		case "fig13d", "summary", "fig14a", "fig14b", "table3":
			continue // exercised separately (slower even when scaled)
		}
		tab, err := e.Run(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tab.Rows) == 0 {
			t.Errorf("%s: empty table", id)
		}
		if tab.ID != id {
			t.Errorf("%s: table ID %q", id, tab.ID)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	if _, err := quickEnv().Run("fig99"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunPointOrderings(t *testing.T) {
	// The core qualitative claims at a saturated point: ours beats the
	// multithreaded proxy, which beats the sequential proxy.
	e := quickEnv()
	pt, err := RunPoint[float64](e, 4096, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !(pt.OursModel < pt.MtModel && pt.MtModel < pt.SeqModel) {
		t.Errorf("ordering violated: ours=%g mt=%g seq=%g",
			pt.OursModel, pt.MtModel, pt.SeqModel)
	}
	if pt.Residual > 1e-10 {
		t.Errorf("residual %g", pt.Residual)
	}
	if pt.OursK != 0 {
		t.Errorf("M=4096 should run k=0, got %d", pt.OursK)
	}
}

func TestRunPointSmallMUsesPCR(t *testing.T) {
	pt, err := RunPoint[float64](quickEnv(), 4, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if pt.OursK == 0 {
		t.Error("M=4 should use tiled PCR")
	}
}

func TestDavidsonPointOursWins(t *testing.T) {
	// §V: ours beats Davidson. At any shape with global steps the
	// launch overhead and DRAM round trips must show up.
	pt, err := RunDavidsonPoint[float64](quickEnv(), 2, 64*1024)
	if err != nil {
		t.Fatal(err)
	}
	if pt.DavidsonModel <= pt.OursModel {
		t.Errorf("Davidson modeled faster: ours=%g dav=%g", pt.OursModel, pt.DavidsonModel)
	}
	if pt.DavidsonLaunch < 2 {
		t.Errorf("Davidson launches = %d, expected global steps", pt.DavidsonLaunch)
	}
}

func TestTableFormatAndCSV(t *testing.T) {
	tab := &Table{
		ID: "x", Title: "T", Header: []string{"a", "bb"},
		Rows:  [][]string{{"1", "2"}, {"333", "4"}},
		Notes: []string{"hello"},
	}
	txt := tab.Format()
	for _, want := range []string{"== x: T ==", "333", "note: hello"} {
		if !strings.Contains(txt, want) {
			t.Errorf("Format missing %q in:\n%s", want, txt)
		}
	}
	csv := tab.CSV()
	if !strings.HasPrefix(csv, "a,bb\n1,2\n") {
		t.Errorf("CSV = %q", csv)
	}
}

func TestScaleClamps(t *testing.T) {
	e := DefaultEnv()
	e.Scale = 1000
	if e.scale(512) != 1 {
		t.Errorf("scale(512) = %d, want clamp to 1", e.scale(512))
	}
	e.Scale = 1
	if e.scale(512) != 512 {
		t.Error("scale=1 must be identity")
	}
}

func TestMeasureCPUPopulatesWall(t *testing.T) {
	e := quickEnv()
	e.MeasureCPU = true
	pt, err := RunPoint[float64](e, 8, 64)
	if err != nil {
		t.Fatal(err)
	}
	if pt.SeqWall <= 0 {
		t.Error("SeqWall not measured")
	}
}

func TestFig12ShapeSmallScale(t *testing.T) {
	// Within one figure: the sequential proxy grows linearly in M while
	// ours grows sub-linearly before the saturation knee.
	e := quickEnv()
	tab, err := e.Run("fig12a")
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 5 {
		t.Fatalf("too few rows: %d", len(tab.Rows))
	}
	// Column 1 is MKLseq in us: last/first should be close to M ratio.
	first := atof(t, tab.Rows[0][1])
	last := atof(t, tab.Rows[len(tab.Rows)-1][1])
	if last/first < 50 {
		t.Errorf("MKLseq not ~linear in M: %g -> %g", first, last)
	}
}

func atof(t *testing.T, s string) float64 {
	t.Helper()
	var v float64
	if _, err := fmtSscan(s, &v); err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}
