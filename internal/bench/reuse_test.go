package bench

import (
	"testing"

	"gputrid/internal/core"
	"gputrid/internal/workload"
)

// The acceptance shape of the reusable-solver work: a mid-size batch
// solved repeatedly, as a time-stepping loop would.
const (
	reuseM = 64
	reuseN = 1024
)

// BenchmarkSolveOneShot is the baseline: every solve builds a fresh
// pipeline, allocates its arenas, and records the device events from
// scratch.
func BenchmarkSolveOneShot(b *testing.B) {
	batch := workload.Batch[float64](workload.DiagDominant, reuseM, reuseN, 1)
	cfg := core.Config{K: core.KAuto}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.Solve(cfg, batch); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveReuse is the steady state of a warmed pipeline: arenas
// pre-allocated, device events recorded once and replayed, zero heap
// allocations per solve (check with -benchmem). Compare against
// BenchmarkSolveOneShot; results are bitwise identical (see
// core.TestPipelineReuseMatchesSolve).
func BenchmarkSolveReuse(b *testing.B) {
	batch := workload.Batch[float64](workload.DiagDominant, reuseM, reuseN, 1)
	p, err := core.NewPipeline[float64](core.Config{K: core.KAuto}, reuseM, reuseN)
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	dst := make([]float64, reuseM*reuseN)
	if err := p.SolveInto(dst, batch); err != nil { // recording solve
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.SolveInto(dst, batch); err != nil {
			b.Fatal(err)
		}
	}
}
