package bench

import (
	"context"
	"errors"
	"testing"
	"time"

	"gputrid"
	"gputrid/internal/workload"
)

// The serving shape of the coalescing work: many concurrent 1-system
// requests — the worst case for per-request dispatch (every request
// pays a full lease/pipeline/transpose round for one row of work) and
// the best case for the batching front-end (flights fill to the
// watermark and solve as one interleaved megabatch).
const (
	coalesceN           = 512
	coalesceParallelism = 32
)

// BenchmarkServePerRequest is the baseline the batching front-end is
// judged against: every 1-system request takes its own pooled solver
// lease and runs its own solve. Requests shed by admission control
// back off and retry, as a real client would.
func BenchmarkServePerRequest(b *testing.B) {
	p := gputrid.NewPool[float64](gputrid.PoolConfig{Capacity: 2, QueueLimit: 256})
	defer p.Close(context.Background())
	if err := p.Warm(1, coalesceN); err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.SetParallelism(coalesceParallelism)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		batch := workload.Batch[float64](workload.DiagDominant, 1, coalesceN, 9)
		for pb.Next() {
			for {
				_, err := p.Solve(ctx, batch)
				if err == nil {
					break
				}
				if errors.Is(err, gputrid.ErrOverloaded) {
					time.Sleep(20 * time.Microsecond)
					continue
				}
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkServeCoalesced is the same offered load through the
// coalescing front-end: concurrent 1-system requests merge into
// interleaved megabatches (born in the k = 0 layout, no transpose)
// and share one pooled megabatch solver lease per flight. Compare
// ns/op against BenchmarkServePerRequest — the ratio is the
// coalescing speedup recorded in BENCH_batching.json.
func BenchmarkServeCoalesced(b *testing.B) {
	p := gputrid.NewPool[float64](gputrid.PoolConfig{Capacity: 2, QueueLimit: 256})
	defer p.Close(context.Background())
	bt, err := gputrid.NewBatcher(p, gputrid.BatcherConfig{
		MaxBatch:         coalesceParallelism,
		MaxWait:          200 * time.Microsecond,
		MaxQueuedFlights: 8,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer bt.Close()
	ctx := context.Background()
	// One warmup flight builds the megabatch station before timing, the
	// coalesced analogue of the per-request bench's Warm.
	warm := workload.Batch[float64](workload.DiagDominant, 1, coalesceN, 9)
	if _, _, err := bt.Solve(ctx, warm); err != nil {
		b.Fatal(err)
	}
	b.SetParallelism(coalesceParallelism)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		batch := workload.Batch[float64](workload.DiagDominant, 1, coalesceN, 9)
		for pb.Next() {
			for {
				_, _, err := bt.Solve(ctx, batch)
				if err == nil {
					break
				}
				if errors.Is(err, gputrid.ErrBatcherSaturated) {
					time.Sleep(20 * time.Microsecond)
					continue
				}
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	st := bt.Stats()
	// The probe runs (b.N of 1) legitimately flush single-system
	// flights; once there is enough work to overlap, the bench must
	// actually coalesce or its numbers are meaningless.
	if b.N >= 2*coalesceParallelism && st.MaxFlushSystems < 2 {
		b.Fatalf("MaxFlushSystems = %d: the bench never coalesced", st.MaxFlushSystems)
	}
	b.ReportMetric(float64(st.FlushedSystems)/float64(st.Flushes()), "systems/flush")
}
