package bench

import (
	"fmt"

	"gputrid/internal/core"
	"gputrid/internal/costmodel"
	"gputrid/internal/tiledpcr"
)

// Experiments returns the IDs of every reproducible table and figure in
// paper order.
func Experiments() []string {
	return []string{
		"table1", "table2", "table3",
		"fig12a", "fig12b", "fig12c",
		"fig13a", "fig13b", "fig13c", "fig13d",
		"fig14a", "fig14b",
		"fig12sp",
		"summary",
	}
}

// Run executes one experiment by ID.
func (e *Env) Run(id string) (*Table, error) {
	switch id {
	case "table1":
		return e.Table1()
	case "table2":
		return e.Table2()
	case "table3":
		return e.Table3()
	case "fig12a":
		return e.Fig12('a', 512, []int{64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384})
	case "fig12b":
		return e.Fig12('b', 2048, []int{64, 128, 256, 512, 1024, 2048, 4096})
	case "fig12c":
		return e.Fig12('c', 16384, []int{64, 128, 256, 512, 1024})
	case "fig13a":
		return e.Fig13('a', 2048, []int{256, 512, 1024, 2048, 4096, 8192})
	case "fig13b":
		return e.Fig13('b', 256, []int{4096, 8192, 16384, 32768})
	case "fig13c":
		return e.Fig13('c', 16, []int{16384, 32768, 65536, 131072})
	case "fig13d":
		return e.Fig13('d', 1, []int{512 * 1024, 2 * 1024 * 1024, 8 * 1024 * 1024})
	case "fig14a":
		return e.Fig14('a', false)
	case "fig14b":
		return e.Fig14('b', true)
	case "fig12sp":
		return e.Fig12Single()
	case "summary":
		return e.Summary()
	default:
		return nil, fmt.Errorf("bench: unknown experiment %q (have %v)", id, Experiments())
	}
}

// Table1 regenerates paper Table I: properties of the buffered sliding
// window as functions of k (c = 1), plus this implementation's concrete
// shared-memory footprint in double precision.
func (e *Env) Table1() (*Table, error) {
	t := &Table{
		ID:    "table1",
		Title: "Properties of the buffered sliding window (c=1)",
		Header: []string{"k", "subTile=c*2^k", "cache<=3*f(k)", "threads=2^k",
			"elims/thread", "elims/subtile", "sharedBytes(f64)"},
		Notes: []string{
			"cache column is the paper's Table I bound 3*sum(2^i); our window uses 2*f(k)+k history + staging (see sharedBytes)",
		},
	}
	for k := 1; k <= 8; k++ {
		p := tiledpcr.Properties(k, 1)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(k), fmt.Sprint(p.SubTileSize), fmt.Sprint(p.CacheSize),
			fmt.Sprint(p.ThreadsPerBlock), fmt.Sprint(p.ElimsPerThread),
			fmt.Sprint(p.ElimsPerSubTile), fmt.Sprint(tiledpcr.SharedBytes[float64](k, 1)),
		})
	}
	return t, nil
}

// Table2 regenerates paper Table II: elimination-step cost of Thomas,
// PCR and the k-step hybrid under both load regimes, evaluated
// symbolically at representative (N, M) for the GTX480's P.
func (e *Env) Table2() (*Table, error) {
	p := e.GPU.HardwareParallelism()
	t := &Table{
		ID:     "table2",
		Title:  fmt.Sprintf("Computation cost (elimination steps), P = %d", p),
		Header: []string{"N", "M", "regime", "Thomas", "PCR", "hybrid k*", "k*"},
	}
	for _, tc := range []struct{ n, m int }{
		{512, 64}, {512, 16384}, {2048, 256}, {16384, 16}, {1 << 21, 1},
	} {
		regime := "M<=P"
		if tc.m > p {
			regime = "M>P"
		}
		k := costmodel.OptimalK(tc.n, tc.m, p)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(tc.n), fmt.Sprint(tc.m), regime,
			fmt.Sprintf("%.0f", costmodel.ThomasCost(tc.n, tc.m, p)),
			fmt.Sprintf("%.0f", costmodel.PCRCost(tc.n, tc.m, p)),
			fmt.Sprintf("%.0f", costmodel.HybridCost(tc.n, tc.m, p, k)),
			fmt.Sprint(k),
		})
	}
	return t, nil
}

// Table3 regenerates paper Table III: the heuristic k per M range, side
// by side with this implementation's autotuner on a representative M
// from each range (double precision, N = 2048).
func (e *Env) Table3() (*Table, error) {
	t := &Table{
		ID:     "table3",
		Title:  "Heuristic k-step per M range (GTX480), heuristic vs autotuned",
		Header: []string{"M range", "paper k", "tile 2^k", "tuned k (M rep., N=2048)"},
		Notes: []string{
			"tuned column re-derives the transition point from the device model (paper: values were found empirically once per hardware)",
		},
	}
	reps := []int{8, 24, 256, 768, 4096}
	for i, row := range core.TableIII() {
		hi := "inf"
		if row.MHi > 0 {
			hi = fmt.Sprint(row.MHi)
		}
		tuned, _ := core.TuneK[float64](e.GPU, reps[i], e.scale(2048))
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("[%d, %s)", row.MLo, hi),
			fmt.Sprint(row.K), fmt.Sprint(row.TileSize),
			fmt.Sprintf("%d (M=%d)", tuned, reps[i]),
		})
	}
	return t, nil
}

// Fig12 regenerates paper Figure 12: execution time vs number of
// systems M at fixed N, double precision.
func (e *Env) Fig12(sub rune, n int, ms []int) (*Table, error) {
	n = e.scale(n)
	t := &Table{
		ID:    fmt.Sprintf("fig12%c", sub),
		Title: fmt.Sprintf("Execution time vs M (N=%d, double)", n),
		Header: []string{"M", "MKLseq[us]", "MKLmt[us]", "Ours[us]", "k",
			"spd/seq", "spd/mt", "residual"},
	}
	for _, m := range ms {
		pt, err := RunPoint[float64](e, m, n)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(m), us(pt.SeqModel), us(pt.MtModel), us(pt.OursModel),
			fmt.Sprint(pt.OursK), ratio(pt.SeqModel, pt.OursModel),
			ratio(pt.MtModel, pt.OursModel), fmt.Sprintf("%.1e", pt.Residual),
		})
	}
	return t, nil
}

// Fig13 regenerates paper Figure 13: execution time vs system size N at
// fixed M, double precision.
func (e *Env) Fig13(sub rune, m int, ns []int) (*Table, error) {
	t := &Table{
		ID:    fmt.Sprintf("fig13%c", sub),
		Title: fmt.Sprintf("Execution time vs N (M=%d, double)", m),
		Header: []string{"N", "MKLseq[ms]", "MKLmt[ms]", "Ours[ms]", "k",
			"spd/seq", "spd/mt", "residual"},
	}
	for _, n := range ns {
		n = e.scale(n)
		pt, err := RunPoint[float64](e, m, n)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), ms(pt.SeqModel), ms(pt.MtModel), ms(pt.OursModel),
			fmt.Sprint(pt.OursK), ratio(pt.SeqModel, pt.OursModel),
			ratio(pt.MtModel, pt.OursModel), fmt.Sprintf("%.1e", pt.Residual),
		})
	}
	return t, nil
}

// Fig14 regenerates paper Figure 14: ours vs the Davidson et al.
// hybrid, double (a) and single (b) precision.
func (e *Env) Fig14(sub rune, single bool) (*Table, error) {
	prec := "double"
	if single {
		prec = "single"
	}
	t := &Table{
		ID:     fmt.Sprintf("fig14%c", sub),
		Title:  fmt.Sprintf("Ours vs Davidson et al. (%s precision)", prec),
		Header: []string{"MxN", "Ours[ms]", "Davidson[ms]", "speedup", "dav.launches"},
	}
	shapes := []struct{ m, n int }{
		{1024, 1024}, {2048, 2048}, {4096, 4096}, {1, 2 * 1024 * 1024},
	}
	for _, s := range shapes {
		m, n := s.m, e.scale(s.n)
		if s.m > 1 {
			m = e.scale(s.m)
		}
		var pt *DavidsonPoint
		var err error
		if single {
			pt, err = RunDavidsonPoint[float32](e, m, n)
		} else {
			pt, err = RunDavidsonPoint[float64](e, m, n)
		}
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%dx%d", m, n), ms(pt.OursModel), ms(pt.DavidsonModel),
			ratio(pt.DavidsonModel, pt.OursModel), fmt.Sprint(pt.DavidsonLaunch),
		})
	}
	return t, nil
}

// Fig12Single regenerates the single-precision variant of Figure 12(a)
// that the paper describes in text ("With single precision, we achieved
// 12.9x and 82.5x speedups ... similar performance trend, though this
// is not shown in the graph").
func (e *Env) Fig12Single() (*Table, error) {
	n := e.scale(512)
	t := &Table{
		ID:    "fig12sp",
		Title: fmt.Sprintf("Execution time vs M (N=%d, single precision)", n),
		Header: []string{"M", "MKLseq[us]", "MKLmt[us]", "Ours[us]", "k",
			"spd/seq", "spd/mt", "residual"},
	}
	for _, m := range []int{64, 256, 1024, 4096, 16384} {
		pt, err := RunPoint[float32](e, m, n)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(m), us(pt.SeqModel), us(pt.MtModel), us(pt.OursModel),
			fmt.Sprint(pt.OursK), ratio(pt.SeqModel, pt.OursModel),
			ratio(pt.MtModel, pt.OursModel), fmt.Sprintf("%.1e", pt.Residual),
		})
	}
	return t, nil
}

// Summary reports the headline speedups (paper abstract: up to 8.3x /
// 49x in double, 12.9x / 82.5x in single) by sweeping M at N = 512 in
// both precisions and taking the best ratio.
func (e *Env) Summary() (*Table, error) {
	t := &Table{
		ID:     "summary",
		Title:  "Headline speedups over the MKL proxies (N=512 sweep)",
		Header: []string{"precision", "max spd vs seq", "paper", "max spd vs mt", "paper"},
	}
	sweep := []int{64, 256, 1024, 4096, 16384}
	n := e.scale(512)
	run := func(prec string, f func(m int) (*PointResult, error), paperSeq, paperMt string) error {
		var bestSeq, bestMt float64
		for _, m := range sweep {
			pt, err := f(m)
			if err != nil {
				return err
			}
			if r := pt.SeqModel / pt.OursModel; r > bestSeq {
				bestSeq = r
			}
			if r := pt.MtModel / pt.OursModel; r > bestMt {
				bestMt = r
			}
		}
		t.Rows = append(t.Rows, []string{prec,
			fmt.Sprintf("%.1fx", bestSeq), paperSeq,
			fmt.Sprintf("%.1fx", bestMt), paperMt})
		return nil
	}
	if err := run("double", func(m int) (*PointResult, error) {
		return RunPoint[float64](e, m, n)
	}, "49x", "8.3x"); err != nil {
		return nil, err
	}
	if err := run("single", func(m int) (*PointResult, error) {
		return RunPoint[float32](e, m, n)
	}, "82.5x", "12.9x"); err != nil {
		return nil, err
	}
	return t, nil
}
