package bench

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden experiment outputs")

// goldenIDs are the experiments pinned by golden files. Everything in
// the harness is deterministic (fixed seeds, analytic models), so any
// diff means a model or kernel change — which must be intentional and
// re-recorded with `go test ./internal/bench -update-golden`.
var goldenIDs = []string{"table1", "table2", "fig12a", "extra-banks"}

func TestGoldenExperiments(t *testing.T) {
	e := DefaultEnv()
	e.Scale = 16
	for _, id := range goldenIDs {
		id := id
		t.Run(id, func(t *testing.T) {
			var tab *Table
			var err error
			if len(id) > 6 && id[:6] == "extra-" {
				tab, err = e.RunExtra(id)
			} else {
				tab, err = e.Run(id)
			}
			if err != nil {
				t.Fatal(err)
			}
			got := tab.CSV()
			path := filepath.Join("testdata", "golden_"+id+".csv")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update-golden): %v", err)
			}
			if got != string(want) {
				t.Errorf("%s output drifted from golden.\n--- got ---\n%s--- want ---\n%s",
					id, got, want)
			}
		})
	}
}
