package bench

import (
	"strings"
	"testing"
)

func TestProfileSolvers(t *testing.T) {
	e := quickEnv()
	for _, solver := range []string{"hybrid", "hybrid-fused", "davidson", "egloff"} {
		out, err := e.Profile(solver, 4, 4096, 5)
		if err != nil {
			t.Fatalf("%s: %v", solver, err)
		}
		for _, want := range []string{"profile:", "TOTAL", "bound"} {
			if !strings.Contains(out, want) {
				t.Errorf("%s profile missing %q:\n%s", solver, want, out)
			}
		}
	}
	if _, err := e.Profile("nope", 1, 8, 0); err == nil {
		t.Error("unknown solver accepted")
	}
}

func TestAblationIDsAllRun(t *testing.T) {
	e := quickEnv()
	for _, id := range Ablations() {
		if id == "ablation-blocks" {
			continue // heavier; covered by the CLI run
		}
		tab, err := e.RunAblation(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tab.Rows) == 0 {
			t.Errorf("%s: empty table", id)
		}
	}
	if _, err := e.RunAblation("ablation-nope"); err == nil {
		t.Error("unknown ablation accepted")
	}
}

func TestExtraIDsAllRun(t *testing.T) {
	e := quickEnv()
	for _, id := range Extras() {
		if id == "extra-large" {
			continue // heavier; covered by the CLI run
		}
		var tab *Table
		var err error
		tab, err = e.RunExtra(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tab.Rows) == 0 {
			t.Errorf("%s: empty table", id)
		}
	}
	if _, err := e.RunExtra("extra-nope"); err == nil {
		t.Error("unknown extra accepted")
	}
}

func TestExtraWallShowsTheWall(t *testing.T) {
	e := DefaultEnv()
	e.Scale = 1
	tab, err := e.RunExtra("extra-wall")
	if err != nil {
		t.Fatal(err)
	}
	// Last row (N = 262144): every in-shared solver must fail, ours must
	// succeed — the paper's thesis as an assertion.
	last := tab.Rows[len(tab.Rows)-1]
	for col := 1; col <= 4; col++ {
		if last[col] != "too large" {
			t.Errorf("column %d at N=262144: %q, want 'too large'", col, last[col])
		}
	}
	if last[5] != "ok" {
		t.Errorf("ours at N=262144: %q, want ok", last[5])
	}
}
