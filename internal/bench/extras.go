package bench

import (
	"fmt"

	"gputrid/internal/core"
	"gputrid/internal/davidson"
	"gputrid/internal/egloff"
	"gputrid/internal/num"
	"gputrid/internal/workload"
	"gputrid/internal/zhang"
)

// Extras returns additional studies beyond the paper's own figures:
// comparisons against the in-shared-memory solver family (§II refs
// [3][10][16][17]) whose shared-memory size wall motivates tiled PCR.
func Extras() []string {
	return []string{"extra-small", "extra-wall", "extra-banks", "extra-large"}
}

// RunExtra executes one extra study by ID.
func (e *Env) RunExtra(id string) (*Table, error) {
	switch id {
	case "extra-small":
		return e.ExtraSmallSystems()
	case "extra-wall":
		return e.ExtraSharedWall()
	case "extra-banks":
		return e.ExtraBankConflicts()
	case "extra-large":
		return e.ExtraLargeBaselines()
	default:
		return nil, fmt.Errorf("bench: unknown extra %q (have %v)", id, Extras())
	}
}

// ExtraSmallSystems compares the classic in-shared-memory solvers with
// the scalable hybrid on a batch that fits shared memory — the regime
// where the paper says its method "reduces to [16][17]".
func (e *Env) ExtraSmallSystems() (*Table, error) {
	t := &Table{
		ID:     "extra-small",
		Title:  "In-shared-memory solvers vs the hybrid (M=512, N=512, double)",
		Header: []string{"solver", "modeled[ms]", "elims", "barriers", "bankConf", "sharedB/blk"},
	}
	m, n := e.scale(512), 512
	if m < 1 {
		m = 1
	}
	b := workload.Batch[float64](workload.DiagDominant, m, n, e.Seed)
	add := func(name string, modeled float64, elims, barriers, conflicts int64, shared int) {
		t.Rows = append(t.Rows, []string{
			name, ms(modeled), fmt.Sprint(elims), fmt.Sprint(barriers),
			fmt.Sprint(conflicts), fmt.Sprint(shared),
		})
	}

	elem := num.SizeOf[float64]()
	if _, st, err := zhang.KernelCR(e.GPU, b, false); err == nil {
		add("CR (in-shared)", e.GPU.EstimateTime(st, elem), st.Eliminations, st.Barriers, st.SharedBankConflicts, st.SharedPerBlock)
	} else {
		return nil, err
	}
	if _, st, err := zhang.KernelCR(e.GPU, b, true); err == nil {
		add("CR conflict-free [10]", e.GPU.EstimateTime(st, elem), st.Eliminations, st.Barriers, st.SharedBankConflicts, st.SharedPerBlock)
	} else {
		return nil, err
	}
	if _, st, err := zhang.KernelPCR(e.GPU, b); err == nil {
		add("PCR (in-shared)", e.GPU.EstimateTime(st, elem), st.Eliminations, st.Barriers, st.SharedBankConflicts, st.SharedPerBlock)
	} else {
		return nil, err
	}
	if _, st, err := zhang.KernelCRPCR(e.GPU, b, 64); err == nil {
		add("CR+PCR [16]", e.GPU.EstimateTime(st, elem), st.Eliminations, st.Barriers, st.SharedBankConflicts, st.SharedPerBlock)
	} else {
		return nil, err
	}
	if _, st, err := zhang.KernelPCRThomas(e.GPU, b, 5); err == nil {
		add("PCR+Thomas [5][17]", e.GPU.EstimateTime(st, elem), st.Eliminations, st.Barriers, st.SharedBankConflicts, st.SharedPerBlock)
	} else {
		return nil, err
	}
	if _, rep, err := core.Solve(core.Config{Device: e.GPU, K: core.KAuto}, b); err == nil {
		st := rep.Stats
		add(fmt.Sprintf("ours (hybrid, k=%d)", rep.K), core.ModeledTime[float64](e.GPU, rep),
			st.Eliminations, st.Barriers, st.SharedBankConflicts, st.SharedPerBlock)
	} else {
		return nil, err
	}
	return t, nil
}

// ExtraSharedWall demonstrates the size wall: the in-shared family
// refuses systems beyond shared-memory capacity while the hybrid keeps
// scaling.
func (e *Env) ExtraSharedWall() (*Table, error) {
	t := &Table{
		ID:     "extra-wall",
		Title:  "Shared-memory size wall (M=4, double): who can solve N?",
		Header: []string{"N", "CR", "PCR", "CR+PCR", "PCR+Thomas", "ours"},
	}
	status := func(err error) string {
		if err != nil {
			return "too large"
		}
		return "ok"
	}
	for _, n := range []int{512, 1024, 2048, 16384, 262144} {
		b := workload.Batch[float64](workload.DiagDominant, 4, n, e.Seed)
		_, _, e1 := zhang.KernelCR(e.GPU, b, false)
		_, _, e2 := zhang.KernelPCR(e.GPU, b)
		_, _, e3 := zhang.KernelCRPCR(e.GPU, b, 64)
		_, _, e4 := zhang.KernelPCRThomas(e.GPU, b, 5)
		_, _, e5 := core.Solve(core.Config{Device: e.GPU, K: core.KAuto}, b)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), status(e1), status(e2), status(e3), status(e4), status(e5),
		})
	}
	return t, nil
}

// ExtraBankConflicts quantifies ref. [10]: bank conflicts of strided CR
// vs the conflict-free padded layout, per system size.
func (e *Env) ExtraBankConflicts() (*Table, error) {
	t := &Table{
		ID:     "extra-banks",
		Title:  "CR shared-memory bank conflicts: plain vs conflict-free padding",
		Header: []string{"N", "conflicts plain", "conflicts padded", "reduction"},
	}
	for _, n := range []int{128, 256, 512, 1024} {
		b := workload.Batch[float64](workload.DiagDominant, 2, n, e.Seed)
		_, sp, err := zhang.KernelCR(e.GPU, b, false)
		if err != nil {
			return nil, err
		}
		_, sq, err := zhang.KernelCR(e.GPU, b, true)
		if err != nil {
			return nil, err
		}
		red := "n/a"
		if sp.SharedBankConflicts > 0 {
			red = fmt.Sprintf("%.1fx", float64(sp.SharedBankConflicts)/float64(max64(sq.SharedBankConflicts, 1)))
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), fmt.Sprint(sp.SharedBankConflicts),
			fmt.Sprint(sq.SharedBankConflicts), red,
		})
	}
	return t, nil
}

// ExtraLargeBaselines compares the three scalable GPU approaches on
// large systems: full global-memory PCR (Egloff, refs [14][15]), the
// Davidson global-sync hybrid (§V), and the paper's tiled hybrid, with
// the multithreaded MKL proxy for reference.
func (e *Env) ExtraLargeBaselines() (*Table, error) {
	t := &Table{
		ID:    "extra-large",
		Title: "Scalable GPU approaches on large systems (double)",
		Header: []string{"MxN", "MKLmt[ms]", "EgloffPCR[ms]", "Davidson[ms]",
			"ours[ms]", "egloff elims", "ours elims"},
	}
	elem := 8
	for _, sh := range []struct{ m, n int }{
		{4, 65536}, {1, 1048576}, {64, 16384},
	} {
		m, n := sh.m, e.scale(sh.n)
		b := workload.Batch[float64](workload.DiagDominant, m, n, e.Seed)

		_, erep, err := egloff.Solve(e.GPU, b)
		if err != nil {
			return nil, err
		}
		var et float64
		for _, st := range erep.Kernels {
			et += e.GPU.EstimateTime(st, elem)
		}
		_, drep, err := davidson.Solve(davidson.Config{Device: e.GPU}, b)
		if err != nil {
			return nil, err
		}
		var dt float64
		for _, st := range drep.Kernels {
			dt += e.GPU.EstimateTime(st, elem)
		}
		_, rep, err := core.Solve(core.Config{Device: e.GPU, K: core.KAuto}, b)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%dx%d", m, n),
			ms(e.CPU.ThomasTime(m, n, elem, e.CPU.Cores*2)),
			ms(et), ms(dt), ms(core.ModeledTime[float64](e.GPU, rep)),
			fmt.Sprint(erep.Stats.Eliminations), fmt.Sprint(rep.Stats.Eliminations),
		})
	}
	return t, nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
