// Package bench implements the paper-reproduction harness: one runner
// per table and figure of the evaluation section (§IV-§V), each
// regenerating the corresponding rows/series. cmd/tridbench is the CLI
// front-end and bench_test.go exposes the same runners as testing.B
// benchmarks.
//
// Times reported for the GPU solvers come from the gpusim cost model
// (deterministic, GTX480 parameters); times for the MKL proxies come
// from the cpusim model (i7-975 parameters). Measured wall-clock of the
// real Go implementations is reported where it is meaningful (the CPU
// baselines). The reproduction target is the paper's curve shapes and
// orderings, not its absolute microseconds; see EXPERIMENTS.md.
package bench

import (
	"fmt"
	"strings"
	"time"

	"gputrid/internal/core"
	"gputrid/internal/cpu"
	"gputrid/internal/cpusim"
	"gputrid/internal/davidson"
	"gputrid/internal/gpusim"
	"gputrid/internal/matrix"
	"gputrid/internal/num"
	"gputrid/internal/workload"
)

// Env carries the modeled hardware and run options.
type Env struct {
	GPU   *gpusim.Device
	CPU   *cpusim.CPU
	Seed  uint64
	Scale int // divide problem sizes by this factor (>=1) for quick runs
	// MeasureCPU additionally runs the real Go CPU baselines and
	// reports wall-clock (skipped when false to keep sweeps fast).
	MeasureCPU bool
}

// DefaultEnv returns the paper's hardware pairing.
func DefaultEnv() *Env {
	return &Env{GPU: gpusim.GTX480(), CPU: cpusim.I7_975(), Seed: 20110913, Scale: 1}
}

func (e *Env) scale(v int) int {
	if e.Scale <= 1 {
		return v
	}
	s := v / e.Scale
	if s < 1 {
		s = 1
	}
	return s
}

// Table is a rendered experiment result.
type Table struct {
	ID     string // e.g. "fig12a"
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(t.Header)
	line(dashes(widths))
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var sb strings.Builder
	sb.WriteString(strings.Join(t.Header, ","))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		sb.WriteString(strings.Join(row, ","))
		sb.WriteByte('\n')
	}
	return sb.String()
}

func dashes(widths []int) []string {
	out := make([]string, len(widths))
	for i, w := range widths {
		out[i] = strings.Repeat("-", w)
	}
	return out
}

// PointResult is one measured configuration.
type PointResult struct {
	M, N      int
	SeqModel  float64 // MKL-sequential proxy, modeled seconds
	MtModel   float64 // MKL-multithreaded proxy, modeled seconds
	OursModel float64 // hybrid on the GPU model, modeled seconds
	OursK     int
	SeqWall   time.Duration // measured Go sequential Thomas (optional)
	Residual  float64
}

// RunPoint solves one (M, N) configuration in precision T with the
// hybrid and evaluates the baselines' models.
func RunPoint[T num.Real](e *Env, m, n int) (*PointResult, error) {
	b := workload.Batch[T](workload.DiagDominant, m, n, e.Seed)
	cfg := core.Config{Device: e.GPU, K: core.KAuto}
	x, rep, err := core.Solve(cfg, b)
	if err != nil {
		return nil, fmt.Errorf("bench: hybrid solve M=%d N=%d: %w", m, n, err)
	}
	res := &PointResult{
		M: m, N: n,
		OursModel: core.ModeledTime[T](e.GPU, rep),
		OursK:     rep.K,
		Residual:  matrix.MaxResidual(b, x),
	}
	elem := num.SizeOf[T]()
	res.SeqModel = e.CPU.ThomasTime(m, n, elem, 1)
	if m >= 2 {
		res.MtModel = e.CPU.ThomasTime(m, n, elem, e.CPU.Cores*2)
	} else {
		res.MtModel = res.SeqModel
	}
	if e.MeasureCPU {
		start := time.Now()
		if _, err := cpu.SolveBatchSeq(b); err != nil {
			return nil, err
		}
		res.SeqWall = time.Since(start)
	}
	return res, nil
}

// DavidsonPoint measures ours vs the Davidson baseline at one shape.
type DavidsonPoint struct {
	M, N           int
	OursModel      float64
	DavidsonModel  float64
	DavidsonLaunch int
}

// RunDavidsonPoint compares the hybrid against the Davidson baseline.
func RunDavidsonPoint[T num.Real](e *Env, m, n int) (*DavidsonPoint, error) {
	b := workload.Batch[T](workload.DiagDominant, m, n, e.Seed)
	_, rep, err := core.Solve(core.Config{Device: e.GPU, K: core.KAuto}, b)
	if err != nil {
		return nil, err
	}
	_, drep, err := davidson.Solve(davidson.Config{Device: e.GPU}, b)
	if err != nil {
		return nil, err
	}
	elem := num.SizeOf[T]()
	var dt float64
	for _, st := range drep.Kernels {
		dt += e.GPU.EstimateTime(st, elem)
	}
	return &DavidsonPoint{
		M: m, N: n,
		OursModel:      core.ModeledTime[T](e.GPU, rep),
		DavidsonModel:  dt,
		DavidsonLaunch: drep.Stats.Launches,
	}, nil
}

func us(sec float64) string { return fmt.Sprintf("%.1f", sec*1e6) }
func ms(sec float64) string { return fmt.Sprintf("%.2f", sec*1e3) }
func ratio(a, b float64) string {
	if b == 0 {
		return "inf"
	}
	return fmt.Sprintf("%.1fx", a/b)
}
