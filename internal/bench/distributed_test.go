package bench

import (
	"context"
	"fmt"
	"testing"

	"gputrid"
	"gputrid/internal/core"
	"gputrid/internal/gpusim"
	"gputrid/internal/workload"
)

// The distributed scaling shape: one huge-N batch, far beyond what a
// single device's hybrid pipeline would be asked to serve, split into
// one slab per simulated device.
const (
	distBenchM = 4
	distBenchN = 1<<16 + 1
)

// BenchmarkDistributed measures the multi-device distributed solve
// across device counts on the simulated NVLink-mesh fabric. ns/op is
// the host-side simulation cost (environment-relative); the figures
// of merit are the deterministic modeled metrics: the pipelined and
// serial device-side makespans of the final assignment (their ratio
// is the transfer/compute overlap win, their trend across device
// counts is the scaling figure recorded in BENCH_distributed.json and
// EXPERIMENTS.md) and the interconnect traffic per solve.
func BenchmarkDistributed(b *testing.B) {
	batch := workload.Batch[float64](workload.DiagDominant, distBenchM, distBenchN, 11)
	for _, devs := range []int{1, 2, 4, 8} {
		// slabs == devices is the fleet default; slabs == 4*devices
		// oversubscribes each device so its copy/compute engines
		// overlap across slabs (pipelined < serial).
		for _, slabs := range []int{devs, 4 * devs} {
			b.Run(fmt.Sprintf("devices=%d/slabs=%d", devs, slabs), func(b *testing.B) {
				benchDistributed(b, batch, devs, slabs)
			})
		}
	}
}

func benchDistributed(b *testing.B, batch *gputrid.Batch[float64], devs, slabs int) {
	topo, err := gpusim.UniformTopology(devs, gpusim.NVLinkMesh(), gpusim.GTX480())
	if err != nil {
		b.Fatal(err)
	}
	s, err := core.NewDistSolver[float64](core.DistConfig{Topology: topo, Slabs: slabs}, distBenchM, distBenchN)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	dst := make([]float64, distBenchM*distBenchN)
	var rep *core.DistReport
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err = s.SolveInto(context.Background(), dst, batch)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rep.ModeledPipelined.Seconds()*1e3, "modeled-ms")
	b.ReportMetric(rep.ModeledSerial.Seconds()*1e3, "modeled-serial-ms")
	b.ReportMetric(float64(rep.Comm.TotalBytes())/float64(b.N)/1e6, "comm-MB/op")
}

// BenchmarkDistributedHedged measures the hedging layer's two faces on
// a fixed 4-device/16-slab assignment. The clean cells bound hedging's
// overhead when nothing is wrong (the hedge scan runs, finds no
// outlier, launches nothing — modeled-ms must stay within 5% of the
// disabled cell, the invariant pinned in BENCH_grayfail.json). The
// straggler cells put a silent 8x slowdown on one device and show the
// tail-latency rescue: disabled, the makespan is hostage to the slow
// device; enabled, outlier slabs are speculatively re-run on the
// least-loaded survivor and the modeled makespan collapses back toward
// the clean figure. Hedging is modeled-time arbitration over identical
// slab solves, so every cell's output is bitwise identical.
func BenchmarkDistributedHedged(b *testing.B) {
	batch := workload.Batch[float64](workload.DiagDominant, distBenchM, distBenchN, 11)
	const devs, slabs = 4, 16
	for _, tc := range []struct {
		name    string
		slow    float64 // SlowFactor on the last device (0 = healthy)
		disable bool
	}{
		{"clean/hedge=off", 0, true},
		{"clean/hedge=on", 0, false},
		{"straggler/hedge=off", 8, true},
		{"straggler/hedge=on", 8, false},
	} {
		b.Run(tc.name, func(b *testing.B) {
			topo, err := gpusim.UniformTopology(devs, gpusim.NVLinkMesh(), gpusim.GTX480())
			if err != nil {
				b.Fatal(err)
			}
			if tc.slow > 0 {
				topo.Device(devs - 1).SlowFactor = tc.slow
			}
			s, err := core.NewDistSolver[float64](core.DistConfig{
				Topology: topo,
				Slabs:    slabs,
				Hedge:    core.HedgePolicy{Disable: tc.disable},
			}, distBenchM, distBenchN)
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			dst := make([]float64, distBenchM*distBenchN)
			var rep *core.DistReport
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err = s.SolveInto(context.Background(), dst, batch)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(rep.ModeledPipelined.Seconds()*1e3, "modeled-ms")
			b.ReportMetric(float64(rep.Hedges), "hedges")
			b.ReportMetric(float64(rep.HedgeWins), "hedge-wins")
		})
	}
}
