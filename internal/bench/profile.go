package bench

import (
	"fmt"
	"strings"

	"gputrid/internal/core"
	"gputrid/internal/davidson"
	"gputrid/internal/egloff"
	"gputrid/internal/gpusim"
	"gputrid/internal/workload"
)

// Profile runs one configuration through the chosen solver and renders
// a per-kernel profiler report (the simulator's nvprof): time, share,
// binding constraint, and counters for each launch.
func (e *Env) Profile(solver string, m, n, k int) (string, error) {
	b := workload.Batch[float64](workload.DiagDominant, m, n, e.Seed)
	tl := gpusim.NewTimeline(e.GPU)
	var head string
	switch solver {
	case "hybrid":
		cfg := core.Config{Device: e.GPU, K: k}
		_, rep, err := core.Solve(cfg, b)
		if err != nil {
			return "", err
		}
		for _, st := range rep.Kernels {
			tl.Record(st, 8)
		}
		head = fmt.Sprintf("hybrid solve M=%d N=%d (k=%d, %d block(s)/system, fused=%v)",
			m, n, rep.K, rep.BlocksPerSystem, rep.Fused)
	case "hybrid-fused":
		cfg := core.Config{Device: e.GPU, K: k, Fuse: true}
		_, rep, err := core.Solve(cfg, b)
		if err != nil {
			return "", err
		}
		for _, st := range rep.Kernels {
			tl.Record(st, 8)
		}
		head = fmt.Sprintf("fused hybrid solve M=%d N=%d (k=%d)", m, n, rep.K)
	case "davidson":
		_, rep, err := davidson.Solve(davidson.Config{Device: e.GPU}, b)
		if err != nil {
			return "", err
		}
		for _, st := range rep.Kernels {
			tl.Record(st, 8)
		}
		head = fmt.Sprintf("davidson solve M=%d N=%d (%d global steps, subLen=%d)",
			m, n, rep.GlobalSteps, rep.SubsystemLen)
	case "egloff":
		_, rep, err := egloff.Solve(e.GPU, b)
		if err != nil {
			return "", err
		}
		for _, st := range rep.Kernels {
			tl.Record(st, 8)
		}
		head = fmt.Sprintf("egloff global PCR M=%d N=%d (%d steps)", m, n, rep.Steps)
	default:
		return "", fmt.Errorf("bench: unknown profile solver %q (hybrid|hybrid-fused|davidson|egloff)", solver)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "== profile: %s on %s ==\n", head, e.GPU.Name)
	sb.WriteString(tl.Report())
	return sb.String(), nil
}
