package gputrid

import (
	"context"
	"errors"
	"fmt"
	"maps"
	"time"

	"gputrid/internal/clock"
	"gputrid/internal/cpu"
	"gputrid/internal/pool"
)

// Clock is the serving stack's injectable control-plane time source
// (wall time in production, a virtual clock in deterministic scenario
// replays). See PoolConfig.Clock.
type Clock = clock.Clock

// Typed serving-layer errors, matchable with errors.Is through the
// "gputrid:"-prefixed wrappers Pool returns.
var (
	// ErrOverloaded matches admission-control rejections: the shape's
	// wait queue was full, or the request's deadline was infeasible
	// given the observed service time. The concrete error is an
	// *OverloadError with a congestion snapshot (errors.As).
	ErrOverloaded = pool.ErrOverloaded
	// ErrPoolClosed matches requests that arrive at (or are queued in)
	// a pool whose Close has begun.
	ErrPoolClosed = pool.ErrClosed
)

// OverloadError is the typed fail-fast rejection of admission control,
// carrying the shape, the rejection reason, and a queue-depth
// snapshot; see the pool package for fields.
type OverloadError = pool.OverloadError

// OverloadReason says which admission check rejected a request.
type OverloadReason = pool.OverloadReason

// The admission rejection reasons.
const (
	QueueFull          = pool.QueueFull
	DeadlineInfeasible = pool.DeadlineInfeasible
)

// BreakerPolicy tunes the pool's circuit breaker; the zero value is
// the production default (20-solve window, trip at 50% degraded with
// ≥8 samples, 100ms cooldown, 3 probe successes to close).
type BreakerPolicy = pool.BreakerPolicy

// BreakerState is the circuit breaker's position.
type BreakerState = pool.BreakerState

// The breaker states.
const (
	BreakerClosed   = pool.BreakerClosed
	BreakerOpen     = pool.BreakerOpen
	BreakerHalfOpen = pool.BreakerHalfOpen
)

// BreakerSnapshot is the observable breaker state.
type BreakerSnapshot = pool.BreakerSnapshot

// PoolStats snapshots a Pool: warmed shapes, in-flight and queued
// requests, admission and route counters, breaker state.
type PoolStats = pool.Stats

// PoolConfig sizes a Pool. The zero value is a small production
// default: 2 solvers and a queue of 8 per shape, at most 8 warmed
// shapes, the default breaker, no extra solver options.
type PoolConfig struct {
	// Capacity is the number of warmed Solver instances per shape —
	// the per-shape concurrency limit; 0 means 2.
	Capacity int
	// QueueLimit bounds the requests waiting per shape; beyond it
	// admission fails fast with ErrOverloaded. 0 means 4*Capacity;
	// negative disables queueing.
	QueueLimit int
	// MaxShapes bounds the distinct warmed shapes (LRU idle shapes are
	// evicted past it); 0 means 8.
	MaxShapes int
	// Breaker tunes the circuit breaker.
	Breaker BreakerPolicy
	// EWMAAlpha is the service-time smoothing factor in (0, 1];
	// 0 means 0.2.
	EWMAAlpha float64
	// Clock is the pool's control-plane time source (idle-eviction
	// stamps, deadline feasibility, breaker cooldown); nil means wall
	// time. Scenario runs inject the fleet's virtual clock so LRU
	// eviction replays deterministically.
	Clock Clock
	// SolverOptions are applied to every Solver the pool builds
	// (WithDevice, WithK, WithWorkers, WithFaultInjection, ...).
	SolverOptions []Option
	// MegabatchOptions are appended to SolverOptions for the solvers
	// of the pool's dedicated megabatch stations (the ones the
	// batching front-end leases). Nil means WithK(0): pure interleaved
	// p-Thomas, whose per-system arithmetic is independent of the
	// batch — the basis of the coalesced-equals-serial bitwise
	// guarantee — and which consumes the megabatch's interleaved
	// layout natively, skipping the blocked transpose.
	MegabatchOptions []Option
}

// Route says which execution path served a pool solve.
type Route int

const (
	// RouteDevice: the warmed hybrid solver (simulated device) path.
	RouteDevice Route = iota
	// RouteFallback: the host pivoting GTSV path, used while the
	// circuit breaker is open (or half-open, for non-probe traffic).
	RouteFallback
)

// String names the route.
func (r Route) String() string {
	switch r {
	case RouteDevice:
		return "device"
	case RouteFallback:
		return "fallback"
	default:
		return fmt.Sprintf("route(%d)", int(r))
	}
}

// PoolResult is a pool solve's result: the usual Result plus how the
// request was served. Unlike Solver results, X and Faults are owned by
// the caller — the pool copies them out of the solver's arenas before
// recycling the instance.
type PoolResult[T Real] struct {
	*Result[T]
	// Route says which path produced X. Fallback results carry no
	// device stats (Stats is nil, ModeledTime 0).
	Route Route
	// Wait is the admission wait: time from Solve entry to a granted
	// solver (0 for fallback routes).
	Wait time.Duration
}

// Pool is the concurrent serving layer over reusable Solvers: it
// multiplexes any number of concurrent callers onto a bounded set of
// warmed, shape-keyed Solver instances with overload protection.
//
//   - Admission control: per shape, at most Capacity solves run while
//     at most QueueLimit requests wait; beyond that Solve fails fast
//     with ErrOverloaded instead of letting latency collapse.
//   - Backpressure and deadlines: every Solve respects its context;
//     requests whose deadline cannot be met given the observed
//     per-shape service time (an EWMA fed by each solve) are rejected
//     early, while queued requests whose context ends return an error
//     matching ErrCancelled.
//   - Circuit breaker: sustained fault degradation (FaultReport
//     activity from the transient-fault layer) trips the breaker and
//     routes traffic to the host pivoting GTSV fallback; after a
//     cooldown, half-open probes test the device path and close the
//     breaker once they come back clean.
//   - Graceful drain: Close stops admissions, drains in-flight solves,
//     and force-cancels them through the PR 4 context paths when its
//     own context expires; all solver worker goroutines settle.
//
// A Pool is safe for concurrent use by any number of goroutines.
type Pool[T Real] struct {
	cfg   PoolConfig
	inner *pool.Pool[*Solver[T]]
}

// NewPool builds an overload-safe serving pool. Solvers are created
// lazily per shape (use Warm to pre-build a shape's complement).
func NewPool[T Real](cfg PoolConfig) *Pool[T] {
	inner := pool.New(
		pool.Config{
			Capacity:   cfg.Capacity,
			QueueLimit: cfg.QueueLimit,
			MaxShapes:  cfg.MaxShapes,
			Breaker:    cfg.Breaker,
			EWMAAlpha:  cfg.EWMAAlpha,
			Clock:      cfg.Clock,
		},
		func(m, n int) (*Solver[T], error) {
			s, err := NewSolver[T](m, n, cfg.SolverOptions...)
			if err != nil {
				return nil, err
			}
			return s, nil
		},
		func(s *Solver[T]) error { return s.Close() },
		func(s *Solver[T]) time.Duration { return s.ModeledTime() },
	)
	megaOpts := append(append([]Option{}, cfg.SolverOptions...), cfg.MegabatchOptions...)
	if cfg.MegabatchOptions == nil {
		megaOpts = append(megaOpts, WithK(0))
	}
	inner.MegaBuild(func(m, n int) (*Solver[T], error) {
		return NewSolver[T](m, n, megaOpts...)
	})
	return &Pool[T]{cfg: cfg, inner: inner}
}

// Warm eagerly builds the full solver complement for a shape, so the
// first requests are not serialized behind arena allocation and the
// recording solve.
func (p *Pool[T]) Warm(m, n int) error {
	if err := p.inner.Warm(m, n); err != nil {
		return fmt.Errorf("gputrid: %w", err)
	}
	return nil
}

// Solve solves the batch through the pool: it validates the input,
// asks the breaker for a route, acquires a warmed Solver (waiting in
// the shape's bounded queue if necessary), and runs the solve under
// the request context. Errors are typed: ErrOverloaded (admission
// rejected), ErrPoolClosed (pool draining), ErrCancelled (context
// ended while queued or mid-solve), ErrFaulted (unrecovered device
// fault). The returned result is caller-owned.
func (p *Pool[T]) Solve(ctx context.Context, b *Batch[T]) (*PoolResult[T], error) {
	if err := b.Validate(); err != nil {
		return nil, fmt.Errorf("gputrid: invalid batch: %w", err)
	}
	device, probe := p.inner.Route()
	if !device {
		return p.solveFallback(ctx, b)
	}

	enq := time.Now()
	lease, err := p.inner.Acquire(ctx, b.M, b.N)
	if err != nil {
		p.inner.Abandon(probe)
		return nil, fmt.Errorf("gputrid: %w", err)
	}
	wait := time.Since(enq)

	s := lease.Solver
	x := make([]T, b.M*b.N)
	err = s.SolveBatchIntoCtx(lease.Ctx, x, b)
	svc := s.LastSolveTime()

	// Everything read off the solver must be captured before Release
	// hands it to the next request.
	if err != nil && errors.Is(err, ErrCancelled) {
		lease.Release(0)
		p.inner.Abandon(probe)
		return nil, fmt.Errorf("gputrid: %w", err)
	}
	res := &PoolResult[T]{
		Result: &Result[T]{
			X:               x,
			K:               s.K(),
			BlocksPerSystem: s.BlocksPerSystem(),
			Stats:           cloneStats(s.Stats()),
			ModeledTime:     s.ModeledTime(),
			WallTime:        svc,
			Faults:          cloneFaultReport(s.FaultReport()),
		},
		Route: RouteDevice,
		Wait:  wait,
	}
	lease.Release(svc)
	// Breaker signal: any fault-layer activity (retries, degraded
	// systems) or a non-cancellation error counts as device
	// degradation; clean solves count toward recovery.
	p.inner.Record(probe, err != nil || res.Faults != nil)
	if err != nil {
		return nil, fmt.Errorf("gputrid: %w", err)
	}
	return res, nil
}

// solveFallback serves one request on the host pivoting GTSV path —
// the breaker-open route. It is deliberately boring: no queue, no
// device, stable for any nonsingular system.
func (p *Pool[T]) solveFallback(ctx context.Context, b *Batch[T]) (*PoolResult[T], error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("gputrid: %w: %w", ErrCancelled, err)
	}
	start := time.Now()
	x, err := cpu.SolveBatchGTSV(b)
	if err != nil {
		return nil, fmt.Errorf("gputrid: fallback: %w", err)
	}
	p.inner.RecordFallback()
	return &PoolResult[T]{
		Result: &Result[T]{X: x, WallTime: time.Since(start)},
		Route:  RouteFallback,
	}, nil
}

// Stats snapshots the pool's admission, routing and breaker state.
func (p *Pool[T]) Stats() PoolStats { return p.inner.Stats() }

// Breaker returns the circuit breaker's observable state.
func (p *Pool[T]) Breaker() BreakerSnapshot { return p.inner.Breaker() }

// ServiceTime returns the pool's current service-time estimate for a
// shape (false when the shape has never been served).
func (p *Pool[T]) ServiceTime(m, n int) (time.Duration, bool) {
	return p.inner.ServiceTime(m, n)
}

// Close gracefully drains the pool: admissions stop immediately (new
// and queued requests fail with ErrPoolClosed), in-flight solves run
// to completion, and when ctx expires first they are force-cancelled
// through their solve contexts. All solver worker goroutines are
// settled and every Solver closed before Close returns. Idempotent;
// returns nil on a clean drain and an error wrapping ctx's error when
// solves had to be force-cancelled.
func (p *Pool[T]) Close(ctx context.Context) error {
	if err := p.inner.Close(ctx); err != nil {
		return fmt.Errorf("gputrid: %w", err)
	}
	return nil
}

// cloneStats copies the recorded device events out of the solver, so
// pool results stay valid after the solver is recycled (configurations
// that rebuild their report per solve would otherwise alias it).
func cloneStats(s *Stats) *Stats {
	if s == nil {
		return nil
	}
	c := *s
	return &c
}

// cloneFaultReport deep-copies a solve's fault report out of the
// solver's reusable arena, so pool results stay valid after the
// solver is recycled to another request.
func cloneFaultReport(r *FaultReport) *FaultReport {
	if r == nil {
		return nil
	}
	c := &FaultReport{Faults: r.Faults, WastedModeledTime: r.WastedModeledTime}
	if len(r.Degraded) > 0 {
		c.Degraded = append([]int(nil), r.Degraded...)
	}
	if len(r.Retries) > 0 {
		c.Retries = maps.Clone(r.Retries)
	}
	return c
}
