// Package adi exposes the module's alternating-direction-implicit
// integrators (Peaceman-Rachford 2-D heat and Poisson iteration,
// Douglas-Gunn 3-D heat) built on the gputrid batch solver — the
// paper's fluid-dynamics/ADI application family (refs [4][5]).
//
//	g := adi.NewGrid2D(255, 255)
//	h := &adi.Heat2D[float64]{Grid: g, Alpha: 0.1}
//	_ = h.Step(u, nil, 1e-3) // one PR step, two tridiagonal batches
//
// The default backend is the hybrid tiled-PCR + p-Thomas solver with
// the Table III heuristic.
package adi

import (
	iadi "gputrid/internal/adi"
	"gputrid/internal/core"
	"gputrid/internal/num"
)

// Backend solves a batch of tridiagonal systems (see gputrid.SolveBatch).
type Backend[T num.Real] = iadi.Backend[T]

// Grid2D is a uniform interior grid on the unit square.
type Grid2D = iadi.Grid2D

// Grid3D is a uniform interior grid on the unit cube.
type Grid3D = iadi.Grid3D

// Heat2D integrates u_t = α∇²u + f with Peaceman-Rachford steps.
type Heat2D[T num.Real] = iadi.Heat2D[T]

// Poisson2D solves −∇²u = f with the Wachspress-accelerated stationary
// Peaceman-Rachford iteration.
type Poisson2D[T num.Real] = iadi.Poisson2D[T]

// Heat3D integrates the 3-D heat equation with Douglas-Gunn steps.
type Heat3D[T num.Real] = iadi.Heat3D[T]

// NewGrid2D builds a grid with nx × ny interior points.
func NewGrid2D(nx, ny int) Grid2D { return iadi.NewGrid2D(nx, ny) }

// NewGrid3D builds a grid with nx × ny × nz interior points.
func NewGrid3D(nx, ny, nz int) Grid3D { return iadi.NewGrid3D(nx, ny, nz) }

// WachspressParams returns J geometrically spaced acceleration
// parameters covering the eigenvalue range [a, b].
func WachspressParams(j int, a, b float64) []float64 {
	return iadi.WachspressParams(j, a, b)
}

// DefaultBackend returns the hybrid GPU solver with automatic k.
func DefaultBackend[T num.Real]() Backend[T] {
	return iadi.GPUBackend[T](core.Config{K: core.KAuto})
}

// CPUBackend returns the sequential Thomas backend (useful for
// host-side verification).
func CPUBackend[T num.Real]() Backend[T] { return iadi.CPUBackend[T]() }
