package adi_test

import (
	"math"
	"testing"

	"gputrid/adi"
)

// TestPublicADIEndToEnd exercises the public surface: a PR heat step
// and a Wachspress Poisson solve through the default GPU backend.
func TestPublicADIEndToEnd(t *testing.T) {
	g := adi.NewGrid2D(31, 31)
	u := make([]float64, g.NX*g.NY)
	f := make([]float64, g.NX*g.NY)
	for j := 0; j < g.NY; j++ {
		y := float64(j+1) * g.HY
		for i := 0; i < g.NX; i++ {
			x := float64(i+1) * g.HX
			f[j*g.NX+i] = 2 * math.Pi * math.Pi * math.Sin(math.Pi*x) * math.Sin(math.Pi*y)
		}
	}
	p := &adi.Poisson2D[float64]{Grid: g, Backend: adi.DefaultBackend[float64]()}
	res, err := p.Iterate(u, f, adi.WachspressParams(6, math.Pi*math.Pi, 4/(g.HX*g.HX)), 4)
	if err != nil {
		t.Fatal(err)
	}
	if res > 1e-4 {
		t.Errorf("Poisson residual %g", res)
	}

	h := &adi.Heat2D[float64]{Grid: g, Alpha: 0.5}
	if err := h.Step(u, nil, 1e-3); err != nil {
		t.Fatal(err)
	}

	g3 := adi.NewGrid3D(7, 9, 11)
	u3 := make([]float64, g3.NX*g3.NY*g3.NZ)
	for i := range u3 {
		u3[i] = 1
	}
	h3 := &adi.Heat3D[float64]{Grid: g3, Alpha: 0.5, Backend: adi.CPUBackend[float64]()}
	if err := h3.Step(u3, 1e-3); err != nil {
		t.Fatal(err)
	}
	// Diffusion with zero boundaries must strictly decrease the interior.
	for i, v := range u3 {
		if v >= 1 || v <= 0 || math.IsNaN(v) {
			t.Fatalf("u3[%d] = %g after one diffusive step", i, v)
		}
	}
}
