package gputrid

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gputrid/internal/workload"
)

// settlePool waits for the process to return to its goroutine
// baseline, dumping stacks on a leak.
func settlePool(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d > %d\n%s", runtime.NumGoroutine(), base,
				buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestPoolHammer drives a small pool from 64 goroutines with a mix of
// unbounded, generous, hopeless and cancelled requests across two
// shapes. Every successful solve must be bitwise identical to the
// serial reference; every failure must be one of the typed admission
// errors; and after a graceful Close, no goroutine may survive.
func TestPoolHammer(t *testing.T) {
	base := runtime.NumGoroutine()

	shapes := [][2]int{{8, 96}, {4, 160}}
	refs := make([][]float64, len(shapes))
	batches := make([]*Batch[float64], len(shapes))
	for i, mn := range shapes {
		batches[i] = workload.Batch[float64](workload.DiagDominant, mn[0], mn[1], uint64(31+i))
		res, err := SolveBatch(batches[i])
		if err != nil {
			t.Fatalf("reference %v: %v", mn, err)
		}
		refs[i] = res.X
	}

	p := NewPool[float64](PoolConfig{Capacity: 2, QueueLimit: 64})
	var served, rejected, cancelled atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 64; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(g) * 977))
			for i := 0; i < 12; i++ {
				si := r.Intn(len(shapes))
				ctx := context.Background()
				var cancel context.CancelFunc
				switch r.Intn(4) {
				case 1: // generous deadline: must not be rejected early
					ctx, cancel = context.WithTimeout(ctx, 30*time.Second)
				case 2: // hopeless deadline: rejected early or cancelled
					ctx, cancel = context.WithTimeout(ctx, 30*time.Microsecond)
				case 3: // cancelled shortly after enqueue
					ctx, cancel = context.WithCancel(ctx)
					delay := time.Duration(r.Intn(300)) * time.Microsecond
					go func(c context.CancelFunc) {
						time.Sleep(delay)
						c()
					}(cancel)
				}
				res, err := p.Solve(ctx, batches[si])
				if cancel != nil {
					defer cancel()
				}
				if err != nil {
					switch {
					case errors.Is(err, ErrOverloaded):
						rejected.Add(1)
					case errors.Is(err, ErrCancelled):
						cancelled.Add(1)
					default:
						t.Errorf("untyped pool error: %v", err)
						return
					}
					continue
				}
				served.Add(1)
				if res.Route != RouteDevice {
					t.Errorf("route = %v, want device (no faults injected)", res.Route)
					return
				}
				for j, v := range res.X {
					if v != refs[si][j] {
						t.Errorf("shape %v: x[%d] = %v, serial reference %v", shapes[si], j, v, refs[si][j])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if served.Load() == 0 {
		t.Fatal("hammer served nothing")
	}
	t.Logf("hammer: served %d, overloaded %d, cancelled %d", served.Load(), rejected.Load(), cancelled.Load())

	if err := p.Close(context.Background()); err != nil {
		t.Fatalf("close: %v", err)
	}
	if s := p.Stats(); s.InFlight != 0 || s.QueueDepth != 0 {
		t.Fatalf("pool did not settle: %+v", s)
	}
	settlePool(t, base)
}

// TestPoolBreakerTripAndRecover is the end-to-end breaker round trip
// on real solvers: a sustained injected-fault burst trips the breaker,
// tripped traffic is served correctly by the CPU pivoting fallback,
// and once the faults heal (the injector's gate disarms), half-open
// probes close the breaker and traffic returns to the device path.
func TestPoolBreakerTripAndRecover(t *testing.T) {
	base := runtime.NumGoroutine()
	const m, n = 4, 192
	b := workload.Batch[float64](workload.DiagDominant, m, n, 77)
	deviceRef, err := SolveBatch(b)
	if err != nil {
		t.Fatal(err)
	}
	cpuRef, err := SolveCPUPivoting(b)
	if err != nil {
		t.Fatal(err)
	}

	var armed atomic.Bool
	inj := &FaultInjector{
		Seed: 5, Rate: 0.9, Repeat: 1,
		Kinds: []DeviceFaultKind{FaultAbort},
		Gate:  armed.Load,
	}
	p := NewPool[float64](PoolConfig{
		Capacity: 1,
		Breaker: BreakerPolicy{
			Window: 8, TripRatio: 0.5, MinSamples: 4,
			Cooldown: 20 * time.Millisecond, ProbeSuccesses: 2,
		},
		SolverOptions: []Option{
			WithFaultInjection(inj),
			WithRetry(RetryPolicy{BaseBackoff: time.Microsecond, MaxBackoff: 10 * time.Microsecond}),
		},
	})
	ctx := context.Background()

	// Healthy: device route, bitwise identical to the serial solve.
	res, err := p.Solve(ctx, b)
	if err != nil {
		t.Fatalf("healthy solve: %v", err)
	}
	if res.Route != RouteDevice {
		t.Fatalf("healthy route = %v", res.Route)
	}
	for i, v := range res.X {
		if v != deviceRef.X[i] {
			t.Fatalf("healthy x[%d] = %v, want %v", i, v, deviceRef.X[i])
		}
	}

	// Sustained fault burst: recovered solves stay correct, the
	// breaker sees the degradation and trips to the fallback.
	armed.Store(true)
	tripped := false
	for i := 0; i < 64 && !tripped; i++ {
		res, err := p.Solve(ctx, b)
		if err != nil {
			t.Fatalf("faulted solve %d: %v", i, err)
		}
		tripped = res.Route == RouteFallback
	}
	if !tripped {
		t.Fatalf("breaker never tripped under sustained faults: %+v", p.Breaker())
	}
	if st := p.Breaker(); st.Trips == 0 {
		t.Fatalf("breaker snapshot after trip: %+v", st)
	}
	// Open-breaker traffic: served by the pivoting CPU path, exactly.
	// Half-open probes (device route) may interleave once the cooldown
	// elapses — and re-trip, faults still being armed — so scan for a
	// fallback-served solve instead of assuming the next one is.
	sawFallback := false
	for i := 0; i < 16 && !sawFallback; i++ {
		res, err = p.Solve(ctx, b)
		if err != nil {
			t.Fatalf("open-breaker solve %d: %v", i, err)
		}
		if res.Route != RouteFallback {
			continue // a half-open probe; bitwise identity checked above
		}
		sawFallback = true
		for j, v := range res.X {
			if v != cpuRef[j] {
				t.Fatalf("fallback x[%d] = %v, want pivoting reference %v", j, v, cpuRef[j])
			}
		}
	}
	if !sawFallback {
		t.Fatalf("no fallback-served solve observed while the breaker was open: %+v", p.Breaker())
	}

	// Heal: probes must close the breaker and restore the device path.
	armed.Store(false)
	deadline := time.Now().Add(10 * time.Second)
	for {
		res, err := p.Solve(ctx, b)
		if err != nil {
			t.Fatalf("recovery solve: %v", err)
		}
		if res.Route == RouteDevice && p.Breaker().State == BreakerClosed {
			for i, v := range res.X {
				if v != deviceRef.X[i] {
					t.Fatalf("recovered x[%d] = %v, want %v", i, v, deviceRef.X[i])
				}
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("breaker did not recover: %+v", p.Breaker())
		}
		time.Sleep(time.Millisecond)
	}
	st := p.Stats()
	if st.ProbeSolves == 0 || st.FallbackSolves == 0 {
		t.Fatalf("stats after round trip: %+v", st)
	}

	if err := p.Close(ctx); err != nil {
		t.Fatalf("close: %v", err)
	}
	settlePool(t, base)
}

// TestPoolCloseCancelsInFlight: a drain whose context expires while a
// solve is parked in fault-retry backoff force-cancels it through the
// lease context; the caller sees the typed cancellation and the pool
// still settles every goroutine.
func TestPoolCloseCancelsInFlight(t *testing.T) {
	base := runtime.NumGoroutine()
	const m, n = 8, 64
	b := workload.Batch[float64](workload.DiagDominant, m, n, 9)
	p := NewPool[float64](PoolConfig{
		Capacity: 1,
		SolverOptions: []Option{
			// A never-healing fault with an hour of backoff parks the
			// solve until force-cancelled.
			WithFaultInjection(&FaultInjector{
				Repeat:   1 << 30,
				Schedule: []ScheduledFault{{Kernel: "", Block: -1, Kind: FaultAbort}},
			}),
			WithRetry(RetryPolicy{MaxRetries: 1 << 20, BaseBackoff: time.Hour, MaxBackoff: time.Hour}),
		},
	})

	solveErr := make(chan error, 1)
	go func() {
		_, err := p.Solve(context.Background(), b)
		solveErr <- err
	}()
	// Wait until the solve is in flight.
	deadline := time.Now().Add(5 * time.Second)
	for p.Stats().InFlight == 0 {
		if time.Now().After(deadline) {
			t.Fatal("solve never started")
		}
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := p.Close(ctx); err == nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("forced close: %v, want error wrapping the drain deadline", err)
	}
	if err := <-solveErr; !errors.Is(err, ErrCancelled) {
		t.Fatalf("force-cancelled solve returned %v, want ErrCancelled", err)
	}
	if _, err := p.Solve(context.Background(), b); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("post-close solve: %v, want ErrPoolClosed", err)
	}
	settlePool(t, base)
}
