package gputrid

// Native Go fuzz targets. Under plain `go test` the seed corpus runs as
// regression tests; under `go test -fuzz=FuzzSolveAgreement .` the
// engine explores shapes and coefficient patterns searching for
// disagreement between the hybrid and the pivoted CPU reference.

import (
	"math"
	"testing"

	"gputrid/internal/cpu"
	"gputrid/internal/matrix"
	"gputrid/internal/num"
)

func FuzzSolveAgreement(f *testing.F) {
	f.Add(uint32(1), uint8(3), uint8(40), uint8(2))
	f.Add(uint32(7), uint8(1), uint8(1), uint8(0))
	f.Add(uint32(99), uint8(16), uint8(200), uint8(6))
	f.Add(uint32(1234), uint8(2), uint8(255), uint8(8))
	f.Fuzz(func(t *testing.T, seed uint32, mRaw, nRaw, kRaw uint8) {
		m := int(mRaw)%16 + 1
		n := int(nRaw)%256 + 1
		k := int(kRaw) % 9
		r := num.NewRNG(uint64(seed) + 1)
		b := NewBatch[float64](m, n)
		for i := 0; i < m; i++ {
			base := i * n
			for j := 0; j < n; j++ {
				var a, c float64
				if j > 0 {
					a = r.Range(-1, 1)
				}
				if j < n-1 {
					c = r.Range(-1, 1)
				}
				b.Lower[base+j] = a
				b.Upper[base+j] = c
				b.Diag[base+j] = math.Abs(a) + math.Abs(c) + r.Range(0.5, 1.5)
				b.RHS[base+j] = r.Range(-100, 100)
			}
		}
		res, err := SolveBatch(b, WithK(k))
		if err != nil {
			t.Fatalf("m=%d n=%d k=%d: %v", m, n, k, err)
		}
		want, err := cpu.SolveBatchGTSV(b)
		if err != nil {
			t.Fatalf("reference: %v", err)
		}
		if d := matrix.MaxRelDiff(res.X, want); d > 1e-8 {
			t.Errorf("m=%d n=%d k=%d: hybrid vs pivoted LU differ by %g", m, n, k, d)
		}
	})
}

func FuzzStreamedEqualsNaive(f *testing.F) {
	f.Add(uint32(5), uint8(33), uint8(3), uint8(10))
	f.Add(uint32(11), uint8(255), uint8(6), uint8(64))
	f.Fuzz(func(t *testing.T, seed uint32, nRaw, kRaw, tileRaw uint8) {
		n := int(nRaw)%300 + 1
		k := int(kRaw)%7 + 1
		tile := int(tileRaw)%n + 1
		r := num.NewRNG(uint64(seed) + 2)
		s := NewSystem[float64](n)
		for j := 0; j < n; j++ {
			var a, c float64
			if j > 0 {
				a = r.Range(-1, 1)
			}
			if j < n-1 {
				c = r.Range(-1, 1)
			}
			s.Lower[j], s.Upper[j] = a, c
			s.Diag[j] = math.Abs(a) + math.Abs(c) + r.Range(0.5, 1.5)
			s.RHS[j] = r.Range(-10, 10)
		}
		checkReduceEquivalence(t, s, k, tile)
	})
}
