package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"gputrid"
)

// solveRequest is the JSON body of POST /solve: one M x N batch in
// natural order (row j of system i at index i*N+j), with an optional
// per-request timeout the pool's admission controller can reject
// against early.
type solveRequest struct {
	M         int       `json:"m"`
	N         int       `json:"n"`
	Lower     []float64 `json:"lower"`
	Diag      []float64 `json:"diag"`
	Upper     []float64 `json:"upper"`
	RHS       []float64 `json:"rhs"`
	TimeoutMS int       `json:"timeout_ms,omitempty"`
}

// solveResponse is the success body: the solution plus how the pool
// served the request. FlushSize and Rescued appear only on coalesced
// responses (-batch): the total system count of the megabatch this
// request rode in, and how many of its own systems needed the host
// rescue path.
type solveResponse struct {
	X         []float64 `json:"x"`
	Route     string    `json:"route"`
	WaitNS    int64     `json:"wait_ns"`
	WallNS    int64     `json:"wall_ns"`
	FlushSize int       `json:"flush_size,omitempty"`
	Rescued   int       `json:"rescued,omitempty"`
}

// errorResponse is every non-200 body.
type errorResponse struct {
	Error string `json:"error"`
	Kind  string `json:"kind"`
	// RetryAfterMS hints when an overloaded request could succeed
	// (also sent as a Retry-After header).
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}

// server ties the HTTP front-end to the solver pool.
type server struct {
	pool     *gputrid.Pool[float64]
	draining atomic.Bool
	// maxTimeout caps client-requested per-solve timeouts.
	maxTimeout time.Duration
	// batcher, when non-nil, coalesces small concurrent requests into
	// megabatches (-batch).
	batcher *gputrid.Batcher[float64]
}

func newServer(cfg gputrid.PoolConfig) *server {
	return &server{pool: gputrid.NewPool[float64](cfg), maxTimeout: time.Minute}
}

func (s *server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /solve", s.handleSolve)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /stats", s.handleStats)
	return mux
}

func (s *server) handleSolve(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining", "server is draining", 0)
		return
	}
	var req solveRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad-request", "invalid JSON: "+err.Error(), 0)
		return
	}
	size := req.M * req.N
	if req.M <= 0 || req.N <= 0 ||
		len(req.Lower) != size || len(req.Diag) != size ||
		len(req.Upper) != size || len(req.RHS) != size {
		writeError(w, http.StatusBadRequest, "bad-request",
			fmt.Sprintf("batch arrays must all have length m*n = %d", size), 0)
		return
	}
	b := &gputrid.Batch[float64]{
		M: req.M, N: req.N,
		Lower: req.Lower, Diag: req.Diag, Upper: req.Upper, RHS: req.RHS,
	}

	ctx := r.Context()
	if req.TimeoutMS > 0 {
		d := time.Duration(req.TimeoutMS) * time.Millisecond
		if d > s.maxTimeout {
			d = s.maxTimeout
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}

	if s.batcher != nil {
		x, cres, err := s.batcher.Solve(ctx, b)
		if err != nil {
			s.writeSolveError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, solveResponse{
			X:         x,
			Route:     "coalesced",
			WaitNS:    int64(cres.Wait),
			FlushSize: cres.FlushSize,
			Rescued:   cres.Rescued,
		})
		return
	}

	res, err := s.pool.Solve(ctx, b)
	if err != nil {
		s.writeSolveError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, solveResponse{
		X:      res.X,
		Route:  res.Route.String(),
		WaitNS: int64(res.Wait),
		WallNS: int64(res.WallTime),
	})
}

// retryAfterMS derives a 503 retry hint from the best congestion
// estimate available, in preference order: the rejection's own EstWait
// (the admission controller already computed the queue-drain time),
// else one queue's worth of the pool's EWMA service-time estimate for
// the rejected shape, else a conservative 50ms when the shape has
// never been observed. est may be nil when no estimator applies.
func retryAfterMS(err error, est func(m, n int) (time.Duration, bool)) int64 {
	var oe *gputrid.OverloadError
	if !errors.As(err, &oe) {
		return 50
	}
	wait := oe.EstWait
	if wait <= 0 && est != nil {
		if svc, ok := est(oe.M, oe.N); ok && svc > 0 {
			// The request would land behind QueueDepth waiters plus the
			// solves already holding the capacity.
			wait = svc * time.Duration(oe.QueueDepth+1)
		}
	}
	if wait <= 0 {
		return 50
	}
	ms := int64(wait / time.Millisecond)
	if ms < 1 {
		ms = 1
	}
	return ms
}

// writeSolveError maps the pool's typed errors onto HTTP status codes.
func (s *server) writeSolveError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, gputrid.ErrOverloaded), errors.Is(err, gputrid.ErrBatcherSaturated):
		writeError(w, http.StatusServiceUnavailable, "overloaded", err.Error(),
			retryAfterMS(err, s.pool.ServiceTime))
	case errors.Is(err, gputrid.ErrPoolClosed), errors.Is(err, gputrid.ErrBatcherClosed):
		writeError(w, http.StatusServiceUnavailable, "draining", err.Error(), 0)
	case errors.Is(err, gputrid.ErrCancelled):
		writeError(w, http.StatusGatewayTimeout, "cancelled", err.Error(), 0)
	case errors.Is(err, gputrid.ErrFaulted):
		writeError(w, http.StatusInternalServerError, "faulted", err.Error(), 0)
	default:
		writeError(w, http.StatusBadRequest, "bad-request", err.Error(), 0)
	}
}

func (s *server) handleHealth(w http.ResponseWriter, r *http.Request) {
	brk := s.pool.Breaker()
	body := map[string]any{
		"status":  "ok",
		"breaker": brk.State.String(),
	}
	code := http.StatusOK
	switch {
	case s.draining.Load():
		body["status"] = "draining"
		code = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", strconv.FormatInt((defaultRetryAfterMS+999)/1000, 10))
	case brk.State != gputrid.BreakerClosed:
		// Degraded but healthy: the CPU fallback serves while the
		// breaker is open, so the instance must keep receiving traffic.
		body["status"] = "degraded"
	}
	writeJSON(w, code, body)
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.pool.Stats()
	// Per-shape congestion so operators can see *which* traffic class
	// is queueing, not just the pool-wide aggregate.
	perShape := make([]map[string]any, 0, len(st.PerShape))
	for _, sh := range st.PerShape {
		perShape = append(perShape, map[string]any{
			"m":               sh.M,
			"n":               sh.N,
			"built":           sh.Built,
			"leased":          sh.Leased,
			"queue_depth":     sh.QueueDepth,
			"service_time_ns": int64(sh.ServiceTime),
		})
	}
	body := map[string]any{
		"shapes":              st.Shapes,
		"per_shape":           perShape,
		"in_flight":           st.InFlight,
		"queue_depth":         st.QueueDepth,
		"admitted":            st.Admitted,
		"rejected_queue_full": st.RejectedQueueFull,
		"rejected_deadline":   st.RejectedDeadline,
		"rejected_closed":     st.RejectedClosed,
		"cancelled_waits":     st.CancelledWaits,
		"device_solves":       st.DeviceSolves,
		"probe_solves":        st.ProbeSolves,
		"fallback_solves":     st.FallbackSolves,
		"breaker": map[string]any{
			"state":           st.Breaker.State.String(),
			"window_fill":     st.Breaker.WindowFill,
			"window_degraded": st.Breaker.WindowDegraded,
			"trips":           st.Breaker.Trips,
			"probe_streak":    st.Breaker.ProbeStreak,
		},
	}
	if s.batcher != nil {
		body["batcher"] = batcherStatsBody(s.batcher.Stats())
	}
	writeJSON(w, http.StatusOK, body)
}

// batcherStatsBody renders the coalescing front-end's counters for
// /stats and /fleet.
func batcherStatsBody(st gputrid.BatcherStats) map[string]any {
	queues := make([]map[string]any, 0, len(st.Queues))
	for _, q := range st.Queues {
		queues = append(queues, map[string]any{
			"n":       q.N,
			"pending": q.Pending,
			"flights": q.Flights,
		})
	}
	return map[string]any{
		"admitted":          st.Admitted,
		"admitted_systems":  st.AdmittedSystems,
		"pending_systems":   st.PendingSystems,
		"flushes_watermark": st.FlushesWatermark,
		"flushes_deadline":  st.FlushesDeadline,
		"flushes_close":     st.FlushesClose,
		"flushed_systems":   st.FlushedSystems,
		"padded_systems":    st.PaddedSystems,
		"max_flush_systems": st.MaxFlushSystems,
		"saturated":         st.Saturated,
		"cancelled_waits":   st.CancelledWaits,
		"failed_flushes":    st.FailedFlushes,
		"shapes":            st.Shapes,
		"queues":            queues,
	}
}

func writeJSON(w http.ResponseWriter, code int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(body)
}

// defaultRetryAfterMS is the Retry-After hint for 503s with no better
// congestion estimate — draining drains in seconds, a dead fleet heals
// or scales on the next ticks — so clients always get a concrete wait
// instead of having to invent their own backoff.
const defaultRetryAfterMS = 1000

func writeError(w http.ResponseWriter, code int, kind, msg string, retryAfterMS int64) {
	// Every 503 advises a wait: a 503 always means "try again later",
	// and a hint-less one pushes the backoff guesswork onto clients.
	if code == http.StatusServiceUnavailable && retryAfterMS <= 0 {
		retryAfterMS = defaultRetryAfterMS
	}
	if retryAfterMS > 0 {
		secs := (retryAfterMS + 999) / 1000
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	writeJSON(w, code, errorResponse{Error: msg, Kind: kind, RetryAfterMS: retryAfterMS})
}

// parseWarmShapes parses "-warm 64:1024,16:4096".
func parseWarmShapes(spec string) ([][2]int, error) {
	if spec == "" {
		return nil, nil
	}
	var out [][2]int
	for _, part := range strings.Split(spec, ",") {
		mn := strings.Split(strings.TrimSpace(part), ":")
		if len(mn) != 2 {
			return nil, fmt.Errorf("bad -warm entry %q (want M:N)", part)
		}
		m, err1 := strconv.Atoi(mn[0])
		n, err2 := strconv.Atoi(mn[1])
		if err1 != nil || err2 != nil || m <= 0 || n <= 0 {
			return nil, fmt.Errorf("bad -warm entry %q (want positive M:N)", part)
		}
		out = append(out, [2]int{m, n})
	}
	return out, nil
}

// serve runs the HTTP front-end until SIGINT/SIGTERM, then drains:
// the listener stops accepting, in-flight requests finish, and the
// pool is closed gracefully (force-cancelling stragglers after a
// bounded drain window).
func serve(addr string, capacity, queue, maxShapes int, warm string, batchN int, batchWait time.Duration) error {
	shapes, err := parseWarmShapes(warm)
	if err != nil {
		return err
	}
	srv := newServer(gputrid.PoolConfig{
		Capacity:   capacity,
		QueueLimit: queue,
		MaxShapes:  maxShapes,
	})
	if batchN > 0 {
		bt, err := gputrid.NewBatcher(srv.pool, gputrid.BatcherConfig{
			MaxBatch: batchN,
			MaxWait:  batchWait,
		})
		if err != nil {
			return err
		}
		srv.batcher = bt
	}
	for _, mn := range shapes {
		if err := srv.pool.Warm(mn[0], mn[1]); err != nil {
			return fmt.Errorf("warming %dx%d: %w", mn[0], mn[1], err)
		}
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.routes()}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()
	fmt.Printf("tridserve: listening on %s (capacity %d/shape)\n", ln.Addr(), capacity)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case <-sig:
	}

	fmt.Println("tridserve: draining...")
	srv.draining.Store(true)
	shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = hs.Shutdown(shCtx)
	if srv.batcher != nil {
		// Flush and complete parked coalesced requests before the pool
		// beneath them drains.
		srv.batcher.Close()
	}
	if err := srv.pool.Close(shCtx); err != nil {
		fmt.Fprintf(os.Stderr, "tridserve: pool drain: %v\n", err)
	}
	return nil
}
