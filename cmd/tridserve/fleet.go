package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"sync/atomic"
	"syscall"
	"time"

	"gputrid"
	"gputrid/internal/batcher"
	"gputrid/internal/fleet"
	"gputrid/internal/fleet/scenario"
	"gputrid/internal/gpusim"
)

// fleetTickInterval drives the live control loop; cordon/heal and
// autoscaling decisions are evaluated at this cadence.
const fleetTickInterval = 250 * time.Millisecond

// fleetServer ties the HTTP front-end to the multi-device fleet
// control plane instead of a single pool: requests route to the
// least-loaded healthy device, device-local failures re-route, and
// operators can observe and drive the control plane over HTTP.
type fleetServer struct {
	fl         *fleet.Fleet
	draining   atomic.Bool
	maxTimeout time.Duration
	// batcher, when non-nil, coalesces small concurrent requests into
	// megabatches routed through Fleet.SolveMegabatch (-batch).
	batcher *batcher.Batcher[float64]
	// distMinN, when positive, routes requests with n >= distMinN to
	// the distributed multi-device solve instead of a single device's
	// pool (-distmin): the system is slab-partitioned across every
	// servable device and survives device death mid-solve.
	distMinN int
}

// fleetSolveResponse extends the pool-mode response with where the
// fleet actually ran the solve.
type fleetSolveResponse struct {
	solveResponse
	// Device is the id of the device that served the request; Attempts
	// is how many devices were tried (>1 means a re-route saved it).
	Device   int `json:"device"`
	Attempts int `json:"attempts"`
	// Distributed-route extras (route "distributed" only): the devices
	// the solve started on, any declared dead mid-solve, and how many
	// slabs migrated to survivors. Device is -1 — no single device
	// served the request.
	DistDevices    []int `json:"dist_devices,omitempty"`
	DistDeaths     []int `json:"dist_deaths,omitempty"`
	DistMigrations int   `json:"dist_migrations,omitempty"`
}

// injectRequest is the body of POST /fleet/inject: one synthetic
// device health event, applied by the next control-loop tick.
type injectRequest struct {
	Device  int     `json:"device"`
	Kind    string  `json:"kind"`
	XID     int     `json:"xid,omitempty"`
	Temp    float64 `json:"temp,omitempty"`
	Message string  `json:"message,omitempty"`
}

func (s *fleetServer) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /solve", s.handleSolve)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /fleet", s.handleFleet)
	mux.HandleFunc("POST /fleet/inject", s.handleInject)
	return mux
}

func (s *fleetServer) handleSolve(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining", "server is draining", 0)
		return
	}
	var req solveRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad-request", "invalid JSON: "+err.Error(), 0)
		return
	}
	size := req.M * req.N
	if req.M <= 0 || req.N <= 0 ||
		len(req.Lower) != size || len(req.Diag) != size ||
		len(req.Upper) != size || len(req.RHS) != size {
		writeError(w, http.StatusBadRequest, "bad-request",
			fmt.Sprintf("batch arrays must all have length m*n = %d", size), 0)
		return
	}
	b := &gputrid.Batch[float64]{
		M: req.M, N: req.N,
		Lower: req.Lower, Diag: req.Diag, Upper: req.Upper, RHS: req.RHS,
	}

	ctx := r.Context()
	if req.TimeoutMS > 0 {
		d := time.Duration(req.TimeoutMS) * time.Millisecond
		if d > s.maxTimeout {
			d = s.maxTimeout
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}

	if s.distMinN > 0 && req.N >= s.distMinN {
		res, err := s.fl.SolveDistributed(ctx, b)
		if err != nil {
			s.writeSolveError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, fleetSolveResponse{
			solveResponse: solveResponse{
				X:      res.X,
				Route:  "distributed",
				WallNS: int64(res.Report.ModeledPipelined),
			},
			Device:         -1,
			Attempts:       1,
			DistDevices:    res.Live,
			DistDeaths:     res.Report.Deaths,
			DistMigrations: res.Report.Migrations,
		})
		return
	}

	if s.batcher != nil && req.M <= s.batcher.MaxBatch() {
		x := make([]float64, size)
		cres, err := s.batcher.Solve(ctx, &batcher.Request[float64]{
			M: req.M, N: req.N,
			Lower: req.Lower, Diag: req.Diag, Upper: req.Upper, RHS: req.RHS,
			X: x,
		})
		if err != nil {
			s.writeSolveError(w, err)
			return
		}
		// A coalesced flight may ride any device (and re-route as a
		// unit), so no single device id is reported.
		writeJSON(w, http.StatusOK, fleetSolveResponse{
			solveResponse: solveResponse{
				X:         x,
				Route:     "coalesced",
				WaitNS:    int64(cres.Wait),
				FlushSize: cres.FlushSize,
				Rescued:   cres.Rescued,
			},
			Device:   -1,
			Attempts: 1,
		})
		return
	}

	res, err := s.fl.Solve(ctx, b)
	if err != nil {
		s.writeSolveError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, fleetSolveResponse{
		solveResponse: solveResponse{
			X:      res.X,
			Route:  res.Route.String(),
			WaitNS: int64(res.Wait),
			WallNS: int64(res.WallTime),
		},
		Device:   res.Device,
		Attempts: res.Attempts,
	})
}

// writeSolveError maps fleet and pool errors onto HTTP status codes.
// Overload hints use the rejecting device's congestion estimate; "no
// servable device" is a 503 too — the fleet may heal or scale up.
func (s *fleetServer) writeSolveError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, gputrid.ErrOverloaded), errors.Is(err, gputrid.ErrBatcherSaturated):
		writeError(w, http.StatusServiceUnavailable, "overloaded", err.Error(),
			retryAfterMS(err, nil))
	case errors.Is(err, fleet.ErrNoDevices):
		writeError(w, http.StatusServiceUnavailable, "no-device", err.Error(),
			int64(fleetTickInterval/time.Millisecond))
	case errors.Is(err, fleet.ErrFleetClosed), errors.Is(err, gputrid.ErrPoolClosed),
		errors.Is(err, gputrid.ErrBatcherClosed):
		writeError(w, http.StatusServiceUnavailable, "draining", err.Error(), 0)
	case errors.Is(err, gputrid.ErrCancelled):
		writeError(w, http.StatusGatewayTimeout, "cancelled", err.Error(), 0)
	case errors.Is(err, gputrid.ErrFaulted):
		writeError(w, http.StatusInternalServerError, "faulted", err.Error(), 0)
	default:
		writeError(w, http.StatusBadRequest, "bad-request", err.Error(), 0)
	}
}

func (s *fleetServer) handleHealth(w http.ResponseWriter, r *http.Request) {
	st := s.fl.Stats()
	servable := st.Active + st.Probation + st.Deprioritized
	body := map[string]any{
		"status":   "ok",
		"servable": servable,
	}
	code := http.StatusOK
	switch {
	case s.draining.Load():
		body["status"] = "draining"
		code = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", strconv.FormatInt((defaultRetryAfterMS+999)/1000, 10))
	case servable == 0:
		// Everything cordoned/dead: unhealthy until a heal or scale-up
		// — which the next control-loop ticks decide, hence the hint.
		body["status"] = "no-device"
		code = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", "1")
	case st.Active == 0:
		body["status"] = "degraded"
	}
	writeJSON(w, code, body)
}

func (s *fleetServer) handleFleet(w http.ResponseWriter, r *http.Request) {
	st := s.fl.Stats()
	devices := make([]map[string]any, 0, len(st.Devices))
	for _, d := range st.Devices {
		devices = append(devices, map[string]any{
			"id":            d.ID,
			"state":         d.State.String(),
			"in_flight":     d.InFlight,
			"served":        d.Served,
			"failed":        d.Failed,
			"corrected_ecc": d.CorrectedECC,
			"queue_depth":   d.QueueDepth,
			"breaker":       d.Breaker.String(),
			"gray": map[string]any{
				"latency_ratio":     d.GrayRatio,
				"integrity_retries": d.IntegrityRetries,
				"hedged_slabs":      d.Hedged,
			},
		})
	}
	body := map[string]any{
		"devices": devices,
		"census": map[string]any{
			"active":        st.Active,
			"probation":     st.Probation,
			"deprioritized": st.Deprioritized,
			"cordoned":      st.Cordoned,
			"dead":          st.Dead,
			"standby":       st.Standby,
		},
		"in_flight":      st.InFlight,
		"queue_depth":    st.QueueDepth,
		"served":         st.Served,
		"rejected":       st.Rejected,
		"rerouted":       st.Rerouted,
		"no_device":      st.NoDevice,
		"cordons":        st.Cordons,
		"heals":          st.Heals,
		"scale_ups":      st.ScaleUps,
		"scale_downs":    st.ScaleDowns,
		"forced_drains":  st.ForcedDrains,
		"build_failures": st.BuildFailures,
		"events":         st.Events,
		"distributed": map[string]any{
			"solves":            st.DistSolves,
			"deaths":            st.DistDeaths,
			"migrations":        st.DistMigrations,
			"degraded":          st.DistDegraded,
			"integrity_retries": st.DistIntegrityRetries,
			"hedges":            st.DistHedges,
			"hedge_wins":        st.DistHedgeWins,
		},
		"gray": map[string]any{
			"stragglers_flagged":  st.GrayStragglers,
			"flaky_links_flagged": st.GrayLinkFlaky,
		},
	}
	if s.batcher != nil {
		body["batcher"] = batcherStatsBody(s.batcher.Stats())
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *fleetServer) handleInject(w http.ResponseWriter, r *http.Request) {
	var req injectRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad-request", "invalid JSON: "+err.Error(), 0)
		return
	}
	kind, err := gpusim.ParseHealthKind(req.Kind)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad-request", err.Error(), 0)
		return
	}
	ev := gpusim.HealthEvent{
		Device: req.Device, Kind: kind,
		XID: req.XID, Temp: req.Temp, Message: req.Message,
	}
	s.fl.Inject(ev)
	writeJSON(w, http.StatusAccepted, map[string]any{
		"accepted": ev.String(),
		"note":     "applied by the next control-loop tick",
	})
}

// serveFleet runs the multi-device serving mode: a fleet of `devices`
// failure domains behind the HTTP front-end, with a wall-clock ticker
// driving the control loop. SIGINT/SIGTERM drains the whole fleet.
func serveFleet(addr string, devices, capacity, queue, maxShapes int, warm string, batchN int, batchWait time.Duration, distMin int) error {
	shapes, err := parseWarmShapes(warm)
	if err != nil {
		return err
	}
	fl, err := fleet.New(fleet.Config{
		Devices: devices,
		Pool: gputrid.PoolConfig{
			Capacity:   capacity,
			QueueLimit: queue,
			MaxShapes:  maxShapes,
		},
		WarmShapes: shapes,
	})
	if err != nil {
		return err
	}
	srv := &fleetServer{fl: fl, maxTimeout: time.Minute, distMinN: distMin}
	if batchN > 0 {
		bt, err := batcher.New(batcher.Config[float64]{
			MaxBatch: batchN,
			MaxWait:  batchWait,
			Solve:    fl.SolveMegabatch,
		})
		if err != nil {
			_ = fl.Close(context.Background())
			return err
		}
		srv.batcher = bt
	}

	stopTicks := make(chan struct{})
	go func() {
		tk := time.NewTicker(fleetTickInterval)
		defer tk.Stop()
		for {
			select {
			case <-tk.C:
				fl.Tick()
			case <-stopTicks:
				return
			}
		}
	}()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		if srv.batcher != nil {
			srv.batcher.Close()
		}
		_ = fl.Close(context.Background())
		return err
	}
	hs := &http.Server{Handler: srv.routes()}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()
	fmt.Printf("tridserve: fleet of %d devices listening on %s (capacity %d/shape/device)\n",
		devices, ln.Addr(), capacity)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		close(stopTicks)
		if srv.batcher != nil {
			srv.batcher.Close()
		}
		_ = fl.Close(context.Background())
		return err
	case <-sig:
	}

	fmt.Println("tridserve: draining fleet...")
	srv.draining.Store(true)
	close(stopTicks)
	shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = hs.Shutdown(shCtx)
	if srv.batcher != nil {
		// Flush and complete parked coalesced flights before the fleet
		// beneath them drains.
		srv.batcher.Close()
	}
	if err := fl.Close(shCtx); err != nil {
		fmt.Fprintf(os.Stderr, "tridserve: fleet drain: %v\n", err)
	}
	return nil
}

// runScenario replays one YAML fleet scenario deterministically and
// prints its report; the exit status is the assertion verdict, which
// is what lets CI run scenarios as smoke tests.
func runScenario(path string) error {
	rep, err := scenario.RunFile(path, log.New(os.Stderr, "", 0).Printf)
	if err != nil {
		return err
	}
	fmt.Print(rep.Summary())
	if !rep.OK() {
		return fmt.Errorf("scenario %s failed %d assertion(s)", rep.Scenario, len(rep.Failures))
	}
	return nil
}
