// Command tridserve exposes the overload-safe solver pool over HTTP:
// a JSON solve endpoint with typed overload/deadline rejections, plus
// health and stats endpoints reporting the circuit breaker and queue
// state. It is the serving-layer demonstrator: many concurrent clients
// multiplex onto a bounded set of warmed solvers, excess load fails
// fast with 503 instead of collapsing latency, and a degrading device
// trips traffic over to the host pivoting fallback.
//
//	tridserve                          # serve on :8437
//	tridserve -capacity 4 -queue 16    # bigger pool
//	tridserve -warm 64:1024,16:4096    # pre-build shapes at startup
//	tridserve -selftest                # no listener: end-to-end self-check
//
// Endpoints:
//
//	POST /solve    {"m","n","lower","diag","upper","rhs","timeout_ms"}
//	               -> 200 {"x","route","wait_ns","wall_ns"}
//	               -> 400 invalid input, 503 overloaded/draining (with
//	                  Retry-After), 504 deadline/cancelled, 500 faulted
//	GET  /healthz  200 while serving (breaker state in the body; a
//	               tripped breaker is "degraded" but still healthy —
//	               the fallback serves), 503 once draining
//	GET  /stats    pool statistics snapshot (JSON)
//
// The -selftest mode runs the whole stack in-process against a real
// HTTP listener on a loopback port: correctness vs the reference CPU
// solve, fail-fast 503s under 4x-capacity offered load, breaker trip
// and recovery under injected faults, and graceful drain. It exits 0
// on success and 1 on failure, and is wired into CI under -race.
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	var (
		addr     = flag.String("addr", ":8437", "listen address")
		capacity = flag.Int("capacity", 2, "warmed solvers per shape")
		queue    = flag.Int("queue", 0, "admission queue per shape (0 = 4x capacity)")
		shapes   = flag.Int("maxshapes", 8, "max distinct warmed shapes")
		warm     = flag.String("warm", "", "comma list of M:N shapes to pre-build")
		selftest = flag.Bool("selftest", false, "run the end-to-end self-check and exit")
	)
	flag.Parse()

	if *selftest {
		if err := runSelfTest(); err != nil {
			fmt.Fprintf(os.Stderr, "tridserve: selftest FAILED: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("tridserve: selftest ok")
		return
	}

	if err := serve(*addr, *capacity, *queue, *shapes, *warm); err != nil {
		fmt.Fprintf(os.Stderr, "tridserve: %v\n", err)
		os.Exit(1)
	}
}
