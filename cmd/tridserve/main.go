// Command tridserve exposes the overload-safe solver pool over HTTP:
// a JSON solve endpoint with typed overload/deadline rejections, plus
// health and stats endpoints reporting the circuit breaker and queue
// state. It is the serving-layer demonstrator: many concurrent clients
// multiplex onto a bounded set of warmed solvers, excess load fails
// fast with 503 instead of collapsing latency, and a degrading device
// trips traffic over to the host pivoting fallback.
//
//	tridserve                          # serve on :8437
//	tridserve -capacity 4 -queue 16    # bigger pool
//	tridserve -warm 64:1024,16:4096    # pre-build shapes at startup
//	tridserve -selftest                # no listener: end-to-end self-check
//	tridserve -fleet 3                 # 3-device fleet behind one front-end
//	tridserve -scenario death.yaml     # replay a fleet scenario, exit 0/1
//	tridserve -batch 64                # coalesce small requests into
//	                                   # 64-system megabatches
//	tridserve -fleet 3 -distmin 4096   # huge-N requests solved across
//	                                   # all devices (survives device
//	                                   # death mid-solve)
//
// Endpoints:
//
//	POST /solve    {"m","n","lower","diag","upper","rhs","timeout_ms"}
//	               -> 200 {"x","route","wait_ns","wall_ns"}
//	               -> 400 invalid input, 503 overloaded/draining/no
//	                  device (every 503 carries a Retry-After — from the
//	                  pool's service-time estimate where one exists, a
//	                  conservative default otherwise), 504 deadline/
//	                  cancelled, 500 faulted
//	GET  /healthz  200 while serving (breaker state in the body; a
//	               tripped breaker is "degraded" but still healthy —
//	               the fallback serves), 503 once draining
//	GET  /stats    pool statistics snapshot, including per-shape queue
//	               depths and service-time estimates (JSON)
//
// With -fleet N the process serves through the multi-device control
// plane instead of a single pool: every device is an independent
// failure domain with its own warmed pool, requests route to the
// least-loaded healthy device and re-route when a device dies beneath
// them, and a ticker runs the cordon/drain/autoscale control loop.
// /solve responses then also carry "device" and "attempts", and two
// endpoints replace /stats:
//
//	GET  /fleet         fleet snapshot: per-device state machine
//	                    position, census, control-plane counters
//	POST /fleet/inject  {"device","kind","xid","temp","message"} —
//	                    inject a synthetic health event ("xid",
//	                    "thermal", "ecc-corrected", "ecc-uncorrected",
//	                    "healed"); applied by the next tick
//
// With -fleet N -distmin K, /solve requests whose row count n is at
// least K are solved *across* the fleet instead of on one device: the
// system is slab-partitioned over every servable device's share of the
// simulated interconnect, a reduced interface system couples the slabs,
// and a device dying mid-solve surfaces a health event (cordoning it at
// the next tick) while its slab migrates to a survivor — the response
// is bitwise identical either way. Distributed responses carry route
// "distributed" with "dist_devices", "dist_deaths" and
// "dist_migrations".
//
// With -batch N (both modes) concurrent small /solve requests of the
// same row count are coalesced into interleaved megabatches of up to
// N systems and solved through one pooled megabatch solver lease,
// flushing on a size watermark or a deadline informed by the pool's
// service-time estimate (-batchwait bounds the wait). Responses carry
// "flush_size" and "rescued"; per-system guard failures in a shared
// megabatch fail only the requests that submitted them, and a full
// coalescing queue sheds with 503 like any other overload. /stats
// (and /fleet) then include a "batcher" section with queue depths and
// flush-cause counters.
//
// With -scenario FILE the process runs no listener at all: it replays
// the YAML fleet scenario (load phases, injected health events,
// assertions) deterministically on a virtual clock and exits 0 when
// every assertion holds, 1 otherwise. See internal/fleet/scenario.
//
// The -selftest mode runs the whole stack in-process against a real
// HTTP listener on a loopback port: correctness vs the reference CPU
// solve, fail-fast 503s under 4x-capacity offered load, breaker trip
// and recovery under injected faults, and graceful drain. It exits 0
// on success and 1 on failure, and is wired into CI under -race.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"
)

func main() {
	var (
		addr      = flag.String("addr", ":8437", "listen address")
		capacity  = flag.Int("capacity", 2, "warmed solvers per shape")
		queue     = flag.Int("queue", 0, "admission queue per shape (0 = 4x capacity)")
		shapes    = flag.Int("maxshapes", 8, "max distinct warmed shapes")
		warm      = flag.String("warm", "", "comma list of M:N shapes to pre-build")
		selftest  = flag.Bool("selftest", false, "run the end-to-end self-check and exit")
		timeout   = flag.Duration("timeout", 5*time.Minute, "overall selftest deadline (the -race selftest needs ~1m)")
		fleetN    = flag.Int("fleet", 0, "serve through a fleet of N device failure domains (0 = single pool)")
		scenFile  = flag.String("scenario", "", "replay a YAML fleet scenario and exit 0/1 on its assertions")
		batchN    = flag.Int("batch", 0, "coalesce concurrent small requests into megabatches of up to N systems (0 = off)")
		batchWait = flag.Duration("batchwait", 2*time.Millisecond, "max time a coalesced request waits for company")
		distMin   = flag.Int("distmin", 0, "fleet mode: solve requests with n >= this across all devices (0 = off)")
	)
	flag.Parse()

	if *selftest {
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		if err := runSelfTest(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "tridserve: selftest FAILED: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("tridserve: selftest ok")
		return
	}

	if *scenFile != "" {
		if err := runScenario(*scenFile); err != nil {
			fmt.Fprintf(os.Stderr, "tridserve: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *fleetN > 0 {
		if err := serveFleet(*addr, *fleetN, *capacity, *queue, *shapes, *warm, *batchN, *batchWait, *distMin); err != nil {
			fmt.Fprintf(os.Stderr, "tridserve: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if err := serve(*addr, *capacity, *queue, *shapes, *warm, *batchN, *batchWait); err != nil {
		fmt.Fprintf(os.Stderr, "tridserve: %v\n", err)
		os.Exit(1)
	}
}
