package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"gputrid"
	"gputrid/internal/core"
	"gputrid/internal/fleet"
	"gputrid/internal/gpusim"
	"gputrid/internal/workload"
)

// runSelfTest exercises the whole serving stack end to end against a
// real loopback listener: correctness over HTTP vs the serial
// reference solve, fail-fast 503s under 4x-capacity offered load,
// breaker trip to the CPU fallback under injected faults with
// recovery once they heal, and a graceful drain. CI runs it under
// -race. ctx bounds the whole run (the -timeout flag): every HTTP
// request and every wait loop derives from it, so a hung stack fails
// the selftest instead of wedging it.
func runSelfTest(ctx context.Context) error {
	// faultsArmed gates the injector: the selftest flips it to model a
	// fault burst that later heals, driving the breaker round trip.
	var faultsArmed atomic.Bool
	inj := &gputrid.FaultInjector{
		Seed: 42, Rate: 0.9, Repeat: 1,
		Kinds: []gputrid.DeviceFaultKind{gputrid.FaultAbort},
		Gate:  faultsArmed.Load,
	}
	srv := newServer(gputrid.PoolConfig{
		Capacity:   1,
		QueueLimit: 1,
		Breaker: gputrid.BreakerPolicy{
			Window: 8, TripRatio: 0.5, MinSamples: 4,
			Cooldown: 50 * time.Millisecond, ProbeSuccesses: 2,
		},
		SolverOptions: []gputrid.Option{gputrid.WithFaultInjection(inj)},
	})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.routes()}
	go func() { _ = hs.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	defer hs.Close()

	if err := checkCorrectness(ctx, base); err != nil {
		return fmt.Errorf("correctness: %w", err)
	}
	if err := checkOverload(ctx, base); err != nil {
		return fmt.Errorf("overload: %w", err)
	}
	if err := checkBreaker(ctx, base, &faultsArmed); err != nil {
		return fmt.Errorf("breaker: %w", err)
	}
	if err := checkDrain(ctx, base, srv); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := checkDistributed(ctx); err != nil {
		return fmt.Errorf("distributed: %w", err)
	}
	return nil
}

// checkDistributed runs the fleet mode's -distmin path end to end over
// HTTP: a huge-N request routes across every device of the simulated
// fabric, one device is armed to die on its first kernel launch of the
// solve, and the response must still arrive — bitwise identical to the
// fault-free distributed reference — with the death reported in the
// response and the device cordoned by the next control-loop tick.
func checkDistributed(ctx context.Context) error {
	const devices, victim = 3, 2
	const m, n = 2, 2049
	topo, err := gpusim.UniformTopology(devices, gpusim.NVLinkMesh(), gpusim.GTX480())
	if err != nil {
		return err
	}
	topo.Device(victim).Faults = &gpusim.Injector{
		Schedule: []gpusim.ScheduledFault{{Kind: gpusim.FaultAbort, Repeat: 1 << 30}},
	}
	fl, err := fleet.New(fleet.Config{Devices: devices, DistTopology: topo})
	if err != nil {
		return err
	}
	defer fl.Close(context.Background())
	srv := &fleetServer{fl: fl, maxTimeout: time.Minute, distMinN: 1024}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.routes()}
	go func() { _ = hs.Serve(ln) }()
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	b := workload.Batch[float64](workload.DiagDominant, m, n, 99)
	body, err := json.Marshal(requestFor(b, 0))
	if err != nil {
		return err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/solve", bytes.NewReader(body))
	if err != nil {
		return err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("huge-N solve: status %d, want 200", resp.StatusCode)
	}
	var fr fleetSolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&fr); err != nil {
		return err
	}
	if fr.Route != "distributed" {
		return fmt.Errorf("route %q, want distributed", fr.Route)
	}
	if len(fr.DistDeaths) != 1 || fr.DistDeaths[0] != victim {
		return fmt.Errorf("dist_deaths %v, want [%d]", fr.DistDeaths, victim)
	}
	if fr.DistMigrations == 0 {
		return fmt.Errorf("device death cost no migration")
	}

	// Fault-free reference on a clean topology: the recovered solve
	// must reproduce these exact bits.
	clean, err := gpusim.UniformTopology(devices, gpusim.NVLinkMesh(), gpusim.GTX480())
	if err != nil {
		return err
	}
	refSolver, err := core.NewDistSolver[float64](core.DistConfig{Topology: clean, Slabs: devices}, m, n)
	if err != nil {
		return err
	}
	defer refSolver.Close()
	ref := make([]float64, m*n)
	if _, err := refSolver.SolveInto(ctx, ref, b); err != nil {
		return err
	}
	for i := range ref {
		if fr.X[i] != ref[i] {
			return fmt.Errorf("element %d differs bitwise from fault-free reference", i)
		}
	}

	// The death surfaced into the health feed mid-solve; the next tick
	// cordons the victim.
	fl.Tick()
	fl.Quiesce()
	st := fl.Stats()
	if st.Cordons != 1 || st.Devices[victim].State != fleet.StateDead {
		return fmt.Errorf("victim not cordoned: cordons %d, state %v", st.Cordons, st.Devices[victim].State)
	}
	return nil
}

func postSolve(ctx context.Context, base string, req solveRequest) (int, *solveResponse, *errorResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return 0, nil, nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/solve", bytes.NewReader(body))
	if err != nil {
		return 0, nil, nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		var sr solveResponse
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			return resp.StatusCode, nil, nil, err
		}
		return resp.StatusCode, &sr, nil, nil
	}
	var er errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		return resp.StatusCode, nil, nil, err
	}
	return resp.StatusCode, nil, &er, nil
}

func requestFor(b *gputrid.Batch[float64], timeoutMS int) solveRequest {
	return solveRequest{
		M: b.M, N: b.N,
		Lower: b.Lower, Diag: b.Diag, Upper: b.Upper, RHS: b.RHS,
		TimeoutMS: timeoutMS,
	}
}

// checkCorrectness solves batches of several shapes over HTTP and
// demands bitwise identity with the in-process one-shot solve.
func checkCorrectness(ctx context.Context, base string) error {
	for _, shape := range [][2]int{{4, 128}, {16, 512}, {4, 128}} {
		b := workload.Batch[float64](workload.DiagDominant, shape[0], shape[1], 7)
		code, sr, er, err := postSolve(ctx, base, requestFor(b, 0))
		if err != nil {
			return err
		}
		if code != http.StatusOK {
			return fmt.Errorf("shape %v: status %d (%+v)", shape, code, er)
		}
		if sr.Route != "device" {
			return fmt.Errorf("shape %v: route %q, want device", shape, sr.Route)
		}
		ref, err := gputrid.SolveBatchCtx(ctx, b)
		if err != nil {
			return err
		}
		if len(sr.X) != len(ref.X) {
			return fmt.Errorf("shape %v: |x| = %d, want %d", shape, len(sr.X), len(ref.X))
		}
		for i := range sr.X {
			if sr.X[i] != ref.X[i] {
				return fmt.Errorf("shape %v: x[%d] = %v, reference %v", shape, i, sr.X[i], ref.X[i])
			}
		}
	}
	return nil
}

// checkOverload fires 4x the pool's total slots (1 active + 1 queued)
// concurrently at one slow shape: every request must finish promptly
// as either a correct 200 or a typed 503, and at least one overload
// rejection must occur.
func checkOverload(ctx context.Context, base string) error {
	b := workload.Batch[float64](workload.DiagDominant, 64, 4096, 11)
	ref, err := gputrid.SolveBatchCtx(ctx, b)
	if err != nil {
		return err
	}
	req := requestFor(b, 0)

	const load = 8
	codes := make([]int, load)
	srs := make([]*solveResponse, load)
	errs := make([]error, load)
	var wg sync.WaitGroup
	for i := 0; i < load; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i], srs[i], _, errs[i] = postSolve(ctx, base, req)
		}(i)
	}
	wg.Wait()

	ok, overloaded := 0, 0
	for i, code := range codes {
		if errs[i] != nil {
			return fmt.Errorf("request %d: %w", i, errs[i])
		}
		switch code {
		case http.StatusOK:
			ok++
			for j := range srs[i].X {
				if srs[i].X[j] != ref.X[j] {
					return fmt.Errorf("request %d: x[%d] diverges under load", i, j)
				}
			}
		case http.StatusServiceUnavailable:
			overloaded++
		default:
			return fmt.Errorf("request %d: unexpected status %d", i, code)
		}
	}
	if ok == 0 {
		return fmt.Errorf("no request served under overload")
	}
	if overloaded == 0 {
		return fmt.Errorf("4x load produced no 503s (ok=%d)", ok)
	}
	var stats struct {
		RejectedQueueFull uint64 `json:"rejected_queue_full"`
	}
	if err := getJSON(base+"/stats", &stats); err != nil {
		return err
	}
	if stats.RejectedQueueFull == 0 {
		return fmt.Errorf("stats report no queue-full rejections")
	}
	return nil
}

// checkBreaker arms the fault injector, drives traffic until the
// breaker trips (health reports degraded, solves route to the CPU
// fallback with still-correct results), then disarms it and verifies
// half-open probes close the breaker and traffic returns to the
// device path.
func checkBreaker(ctx context.Context, base string, armed *atomic.Bool) error {
	b := workload.Batch[float64](workload.DiagDominant, 4, 256, 13)
	want, err := gputrid.SolveCPUPivoting(b)
	if err != nil {
		return err
	}
	req := requestFor(b, 0)

	armed.Store(true)
	tripped := false
	for i := 0; i < 64 && !tripped; i++ {
		code, sr, _, err := postSolve(ctx, base, req)
		if err != nil {
			return err
		}
		if code != http.StatusOK {
			return fmt.Errorf("solve %d under faults: status %d", i, code)
		}
		tripped = sr.Route == "fallback"
	}
	if !tripped {
		return fmt.Errorf("breaker did not trip under sustained faults")
	}
	var health struct {
		Status  string `json:"status"`
		Breaker string `json:"breaker"`
	}
	if err := getJSON(base+"/healthz", &health); err != nil {
		return err
	}
	if health.Status != "degraded" {
		return fmt.Errorf("health under open breaker: %+v, want degraded", health)
	}
	// Fallback solves stay correct (host pivoting reference). Once the
	// cooldown elapses, half-open probes (device route) may interleave
	// with the fallback traffic — and re-trip, since faults are still
	// armed — so scan for a fallback-served solve rather than assuming
	// the very next one is.
	sawFallback := false
	for i := 0; i < 16 && !sawFallback; i++ {
		code, sr, _, err := postSolve(ctx, base, req)
		if err != nil {
			return err
		}
		if code != http.StatusOK {
			return fmt.Errorf("open-breaker solve: status %d", code)
		}
		if sr.Route != "fallback" {
			continue // a half-open probe
		}
		sawFallback = true
		for j := range sr.X {
			if sr.X[j] != want[j] {
				return fmt.Errorf("fallback x[%d] = %v, reference %v", j, sr.X[j], want[j])
			}
		}
	}
	if !sawFallback {
		return fmt.Errorf("no fallback-served solve observed while the breaker was open")
	}

	// Heal the device; probes must close the breaker again. The wait is
	// bounded by the selftest context (-timeout), not a raw wall-clock
	// poll, so shortening the deadline genuinely shortens the run.
	armed.Store(false)
	for {
		code, sr, _, err := postSolve(ctx, base, req)
		if err != nil {
			return err
		}
		if code != http.StatusOK {
			return fmt.Errorf("solve during recovery: status %d", code)
		}
		var health struct {
			Status string `json:"status"`
		}
		if err := getJSON(base+"/healthz", &health); err != nil {
			return err
		}
		if sr.Route == "device" && health.Status == "ok" {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("breaker did not recover after faults healed (route %q, health %q): %w",
				sr.Route, health.Status, ctx.Err())
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// checkDrain closes the pool gracefully and verifies late requests
// are rejected as draining.
func checkDrain(ctx context.Context, base string, srv *server) error {
	srv.draining.Store(true)
	dctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := srv.pool.Close(dctx); err != nil {
		return fmt.Errorf("pool close: %w", err)
	}
	b := workload.Batch[float64](workload.DiagDominant, 2, 64, 3)
	code, _, er, err := postSolve(ctx, base, requestFor(b, 0))
	if err != nil {
		return err
	}
	if code != http.StatusServiceUnavailable || er == nil || er.Kind != "draining" {
		return fmt.Errorf("post-drain solve: status %d kind %+v, want 503 draining", code, er)
	}
	return nil
}

func getJSON(url string, into any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(into)
}
