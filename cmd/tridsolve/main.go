// Command tridsolve solves tridiagonal systems from the command line:
// either generated workloads (-kind, -m, -n) or a system read from a
// file (-in) with one "a b c d" row per line. Any of the module's
// algorithms can be selected, and every solve is verified.
//
//	tridsolve -m 512 -n 2048                 # hybrid on a batch
//	tridsolve -algo cr -n 4095               # cyclic reduction
//	tridsolve -algo davidson -m 4 -n 65536   # the §V baseline
//	tridsolve -in sys.txt -algo pcr          # solve a file
//
// The -guard flag routes the solve through the guarded pipeline
// (per-system fault isolation with refinement/pivoting escalation) and
// prints a per-system diagnosis of every escalated system; -inject
// deterministically corrupts chosen systems to demonstrate the ladder:
//
//	tridsolve -guard -m 64 -n 1024 -inject 7:zero-diag,23:singular
//
// The -chaos flag injects seeded transient device faults (aborted
// launches, corrupted stores, hung blocks) at the given rate per
// kernel block and lets the solver's checkpointed-retry layer recover;
// the summary line reports what the recovery cost:
//
//	tridsolve -m 512 -n 2048 -chaos 0.05
//	tridsolve -guard -m 64 -n 1024 -chaos 0.1 -inject 7:zero-diag
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"gputrid"
	"gputrid/internal/core"
	"gputrid/internal/cpu"
	"gputrid/internal/davidson"
	"gputrid/internal/egloff"
	"gputrid/internal/gpusim"
	"gputrid/internal/matrix"
	"gputrid/internal/pcr"
	"gputrid/internal/trifile"
	"gputrid/internal/workload"
	"gputrid/internal/zhang"
)

func main() {
	var (
		algo   = flag.String("algo", "hybrid", "hybrid|cpu|gtsv|cr|pcr|rd|davidson|egloff|zhang-cr|zhang-pcr|zhang-crpcr|zhang-pcrthomas")
		m      = flag.Int("m", 1, "number of systems")
		n      = flag.Int("n", 1024, "rows per system")
		kind   = flag.String("kind", "diag-dominant", "diag-dominant|toeplitz|heat|spline")
		k      = flag.Int("k", gputrid.AutoK, "PCR steps for the hybrid (-1 = auto)")
		seed   = flag.Uint64("seed", 1, "workload seed")
		in     = flag.String("in", "", "read a system/batch from file (text or TRID binary)")
		out    = flag.String("out", "", "write the solution vector to file")
		fuse   = flag.Bool("fuse", false, "enable kernel fusion (hybrid)")
		cond   = flag.Bool("cond", false, "estimate the condition number of system 0")
		quiet  = flag.Bool("q", false, "print only the summary line")
		guard  = flag.Bool("guard", false, "guarded solve: per-system fault isolation with refinement/pivoting escalation")
		inject = flag.String("inject", "", "guarded fault injection, e.g. 3:zero-diag,7:singular (kinds: corrupt|zero-diag|singular|nan)")
		chaos  = flag.Float64("chaos", 0, "transient device-fault rate per kernel block (hybrid/guard; seeded by -seed)")
	)
	flag.Parse()

	if *chaos < 0 || *chaos > 1 {
		fail(fmt.Errorf("-chaos wants a rate in [0, 1], got %g", *chaos))
	}
	b, err := buildBatch(*in, *kind, *m, *n, *seed)
	if err != nil {
		fail(err)
	}
	if *cond {
		k1 := matrix.Cond1Est(b.System(0), cpu.SolveGTSV[float64])
		fmt.Printf("cond1(system 0) ~= %.3e\n", k1)
	}
	if *guard {
		solveGuarded(b, *k, *fuse, *inject, *out, *chaos, *seed)
		return
	}
	if *inject != "" {
		fail(fmt.Errorf("-inject requires -guard"))
	}
	if *chaos > 0 && *algo != "hybrid" {
		fail(fmt.Errorf("-chaos requires -algo hybrid or -guard (algorithm %q has no recovery layer)", *algo))
	}

	start := time.Now()
	x, detail, err := solve(*algo, b, *k, *fuse, *chaos, *seed)
	if err != nil {
		fail(err)
	}
	wall := time.Since(start)

	res := matrix.MaxResidual(b, x)
	tol := matrix.ResidualTolerance[float64](b.N)
	status := "OK"
	if !(res <= tol) {
		status = "FAILED"
	}
	fmt.Printf("%s: algo=%s M=%d N=%d residual=%.3e tol=%.1e wall=%v %s\n",
		status, *algo, b.M, b.N, res, tol, wall.Round(time.Microsecond), detail)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		if err := trifile.WriteSolution(f, x, b.M, b.N); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
	}
	if !*quiet && b.N <= 16 {
		for i := 0; i < b.M; i++ {
			fmt.Printf("x[%d] = %v\n", i, x[i*b.N:(i+1)*b.N])
		}
	}
	if status != "OK" {
		os.Exit(1)
	}
}

func buildBatch(path, kind string, m, n int, seed uint64) (*matrix.Batch[float64], error) {
	if path == "" {
		var kd workload.Kind
		switch kind {
		case "diag-dominant":
			kd = workload.DiagDominant
		case "toeplitz":
			kd = workload.Toeplitz
		case "heat":
			kd = workload.Heat
		case "spline":
			kd = workload.Spline
		default:
			return nil, fmt.Errorf("unknown kind %q", kind)
		}
		return workload.Batch[float64](kd, m, n, seed), nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) >= 4 && string(data[:4]) == "TRID" {
		return trifile.ReadBinary[float64](bytes.NewReader(data))
	}
	return trifile.ReadText[float64](bytes.NewReader(data))
}

func solve(algo string, b *matrix.Batch[float64], k int, fuse bool, chaos float64, seed uint64) ([]float64, string, error) {
	switch algo {
	case "hybrid":
		opts := []gputrid.Option{gputrid.WithK(k)}
		if fuse {
			opts = append(opts, gputrid.WithKernelFusion())
		}
		if chaos > 0 {
			opts = append(opts, gputrid.WithFaultInjection(&gputrid.FaultInjector{Seed: seed, Rate: chaos}))
		}
		res, err := gputrid.SolveBatch(b, opts...)
		if err != nil {
			return nil, "", err
		}
		detail := fmt.Sprintf("k=%d blocks/sys=%d modeled=%v",
			res.K, res.BlocksPerSystem, res.ModeledTime.Round(time.Nanosecond))
		if chaos > 0 {
			detail += " " + faultSummary(res.Faults)
		}
		return res.X, detail, nil
	case "cpu":
		x, err := gputrid.SolveCPU(b)
		return x, "", err
	case "gtsv":
		x, err := gputrid.SolveCPUPivoting(b)
		return x, "", err
	case "cr", "pcr", "rd":
		x := make([]float64, b.M*b.N)
		for i := 0; i < b.M; i++ {
			var xi []float64
			switch algo {
			case "cr":
				xi = pcr.SolveCR(b.System(i))
			case "pcr":
				xi = pcr.Solve(b.System(i))
			case "rd":
				xi = pcr.SolveRD(b.System(i))
			}
			copy(x[i*b.N:], xi)
		}
		return x, "", nil
	case "davidson":
		x, rep, err := davidson.Solve(davidson.Config{}, b)
		if err != nil {
			return nil, "", err
		}
		return x, fmt.Sprintf("globalSteps=%d subLen=%d", rep.GlobalSteps, rep.SubsystemLen), nil
	case "egloff":
		x, rep, err := egloff.Solve(nil, b)
		if err != nil {
			return nil, "", err
		}
		return x, fmt.Sprintf("steps=%d launches=%d", rep.Steps, rep.Stats.Launches), nil
	case "zhang-cr":
		x, _, err := zhang.KernelCR(gpusim.GTX480(), b, true)
		return x, "", err
	case "zhang-pcr":
		x, _, err := zhang.KernelPCR(gpusim.GTX480(), b)
		return x, "", err
	case "zhang-crpcr":
		x, _, err := zhang.KernelCRPCR(gpusim.GTX480(), b, 64)
		return x, "", err
	case "zhang-pcrthomas":
		x, _, err := zhang.KernelPCRThomas(gpusim.GTX480(), b, 5)
		return x, "", err
	case "reference":
		return core.SolveReference(b, 4), "", nil
	default:
		return nil, "", fmt.Errorf("unknown algorithm %q", algo)
	}
}

// solveGuarded runs the guarded pipeline and prints the per-system
// diagnosis: a summary of systems per stage, then one line for every
// system that left the fast path. Exits 1 when any system was
// unrecoverable (the healthy solutions are still written to -out).
func solveGuarded(b *matrix.Batch[float64], k int, fuse bool, inject, out string, chaos float64, seed uint64) {
	opts := []gputrid.Option{gputrid.WithK(k)}
	if fuse {
		opts = append(opts, gputrid.WithKernelFusion())
	}
	if chaos > 0 {
		opts = append(opts, gputrid.WithFaultInjection(&gputrid.FaultInjector{Seed: seed, Rate: chaos}))
	}
	var pol gputrid.GuardPolicy
	if inject != "" {
		inj, err := parseInject(inject, b.M)
		if err != nil {
			fail(err)
		}
		pol.Inject = inj
	}
	opts = append(opts, gputrid.WithGuard(pol))

	start := time.Now()
	res, err := gputrid.SolveGuarded(b, opts...)
	if res == nil {
		fail(err)
	}
	wall := time.Since(start)

	st := res.Stages()
	status := "OK"
	if len(res.Failed) > 0 {
		status = "DEGRADED"
	}
	fmt.Printf("%s: algo=guarded M=%d N=%d fast=%d refined=%d pivoted=%d failed=%d k=%d wall=%v\n",
		status, b.M, b.N, st[gputrid.StageFast], st[gputrid.StageRefine],
		st[gputrid.StagePivot], st[gputrid.StageFailed], res.K, wall.Round(time.Microsecond))
	if chaos > 0 {
		fmt.Printf("  chaos: rate=%g %s\n", chaos, faultSummary(res.Faults))
	}
	for _, rep := range res.Reports {
		if rep.Stage == gputrid.StageFast {
			continue
		}
		line := fmt.Sprintf("  system %d: stage=%s residual %.3e -> %.3e",
			rep.System, rep.Stage, rep.ResidualBefore, rep.ResidualAfter)
		if rep.Refinements > 0 {
			line += fmt.Sprintf(" refinements=%d", rep.Refinements)
		}
		if rep.CondEst > 0 {
			line += fmt.Sprintf(" cond1~%.1e", rep.CondEst)
		}
		if rep.Err != nil {
			line += fmt.Sprintf(" (%v)", rep.Err.Unwrap())
		}
		fmt.Println(line)
	}
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			fail(err)
		}
		if err := trifile.WriteSolution(f, res.X, b.M, b.N); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
	}
	if len(res.Failed) > 0 {
		os.Exit(1)
	}
}

// parseInject parses "SYS:KIND[,SYS:KIND...]" fault specs.
func parseInject(spec string, m int) (*gputrid.GuardInjection, error) {
	inj := &gputrid.GuardInjection{Seed: 1}
	for _, part := range strings.Split(spec, ",") {
		sysStr, kindStr, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return nil, fmt.Errorf("bad -inject entry %q (want SYS:KIND)", part)
		}
		sys, err := strconv.Atoi(sysStr)
		if err != nil || sys < 0 || sys >= m {
			return nil, fmt.Errorf("bad -inject system %q (batch has %d systems)", sysStr, m)
		}
		var kind gputrid.GuardFault
		switch kindStr {
		case "corrupt":
			kind = gputrid.GuardFault{System: sys, Kind: gputrid.FaultCorruptSolution}
		case "zero-diag":
			kind = gputrid.GuardFault{System: sys, Kind: gputrid.FaultZeroDiagonal}
		case "singular":
			kind = gputrid.GuardFault{System: sys, Kind: gputrid.FaultSingularMatrix}
		case "nan":
			kind = gputrid.GuardFault{System: sys, Kind: gputrid.FaultNaNCoefficient}
		default:
			return nil, fmt.Errorf("unknown -inject kind %q (corrupt|zero-diag|singular|nan)", kindStr)
		}
		inj.Faults = append(inj.Faults, kind)
	}
	return inj, nil
}

// faultSummary renders a FaultReport for the summary line.
func faultSummary(fr *gputrid.FaultReport) string {
	if fr == nil || !fr.Any() {
		return "faults=0"
	}
	s := fmt.Sprintf("faults=%d retries=%d degraded=%d", fr.Faults, fr.TotalRetries(), len(fr.Degraded))
	if fr.WastedModeledTime > 0 {
		s += fmt.Sprintf(" wasted=%v", fr.WastedModeledTime.Round(time.Nanosecond))
	}
	return s
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "tridsolve: %v\n", err)
	os.Exit(1)
}
