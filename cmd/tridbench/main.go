// Command tridbench regenerates every table and figure of the paper's
// evaluation section on the simulated GTX480 / i7-975 pairing.
//
//	tridbench                  # run everything
//	tridbench -exp fig12a      # one experiment
//	tridbench -exp list        # list experiment IDs
//	tridbench -scale 8         # divide problem sizes by 8 (quick run)
//	tridbench -csv             # emit CSV instead of aligned text
//	tridbench -measure-cpu     # also wall-clock the real Go CPU baseline
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"gputrid/internal/bench"
	"gputrid/internal/gpusim"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment ID, 'all', or 'list'")
		scale      = flag.Int("scale", 1, "divide problem sizes by this factor")
		csv        = flag.Bool("csv", false, "emit CSV instead of aligned text")
		seed       = flag.Uint64("seed", 20110913, "workload seed")
		measureCPU = flag.Bool("measure-cpu", false, "wall-clock the real Go CPU baselines too")
		device     = flag.String("device", "gtx480", "GPU preset: gtx480|teslac2070|gtx280")
		profile    = flag.String("profile", "", "per-kernel profile: solver:M:N[:k], e.g. hybrid:16:65536:7")
	)
	flag.Parse()

	if *exp == "list" {
		all := append(bench.Experiments(), bench.Ablations()...)
		all = append(all, bench.Extras()...)
		fmt.Println(strings.Join(all, "\n"))
		return
	}

	env := bench.DefaultEnv()
	if d, ok := gpusim.Devices()[strings.ToLower(*device)]; ok {
		env.GPU = d
	} else {
		fmt.Fprintf(os.Stderr, "tridbench: unknown device %q\n", *device)
		os.Exit(1)
	}
	env.Scale = *scale
	env.Seed = *seed
	env.MeasureCPU = *measureCPU

	if *profile != "" {
		parts := strings.Split(*profile, ":")
		if len(parts) < 3 {
			fmt.Fprintln(os.Stderr, "tridbench: -profile wants solver:M:N[:k]")
			os.Exit(1)
		}
		var m, n int
		k := -1
		fmt.Sscan(parts[1], &m)
		fmt.Sscan(parts[2], &n)
		if len(parts) > 3 {
			fmt.Sscan(parts[3], &k)
		}
		out, err := env.Profile(parts[0], m, n, k)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tridbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(out)
		return
	}

	ids := bench.Experiments()
	switch *exp {
	case "all":
	case "ablations":
		ids = bench.Ablations()
	case "extras":
		ids = bench.Extras()
	case "everything":
		ids = append(ids, bench.Ablations()...)
		ids = append(ids, bench.Extras()...)
	default:
		ids = strings.Split(*exp, ",")
	}
	start := time.Now()
	for _, id := range ids {
		id = strings.TrimSpace(id)
		var t *bench.Table
		var err error
		if strings.HasPrefix(id, "ablation-") {
			t, err = env.RunAblation(id)
		} else if strings.HasPrefix(id, "extra-") {
			t, err = env.RunExtra(id)
		} else {
			t, err = env.Run(id)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "tridbench: %v\n", err)
			os.Exit(1)
		}
		if *csv {
			fmt.Printf("# %s: %s\n%s\n", t.ID, t.Title, t.CSV())
		} else {
			fmt.Println(t.Format())
		}
	}
	fmt.Fprintf(os.Stderr, "tridbench: completed %d experiment(s) in %v (scale=%d)\n",
		len(ids), time.Since(start).Round(time.Millisecond), *scale)
}
