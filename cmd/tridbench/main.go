// Command tridbench regenerates every table and figure of the paper's
// evaluation section on the simulated GTX480 / i7-975 pairing.
//
//	tridbench                  # run everything
//	tridbench -exp fig12a      # one experiment
//	tridbench -exp list        # list experiment IDs
//	tridbench -scale 8         # divide problem sizes by 8 (quick run)
//	tridbench -csv             # emit CSV instead of aligned text
//	tridbench -measure-cpu     # also wall-clock the real Go CPU baseline
//	tridbench -reuse 64:1024   # one-shot vs reusable-solver comparison
//	tridbench -faults 64:1024  # fault-rate sweep of the recovery layer
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"gputrid/internal/bench"
	"gputrid/internal/core"
	"gputrid/internal/gpusim"
	"gputrid/internal/workload"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment ID, 'all', or 'list'")
		scale      = flag.Int("scale", 1, "divide problem sizes by this factor")
		csv        = flag.Bool("csv", false, "emit CSV instead of aligned text")
		seed       = flag.Uint64("seed", 20110913, "workload seed")
		measureCPU = flag.Bool("measure-cpu", false, "wall-clock the real Go CPU baselines too")
		device     = flag.String("device", "gtx480", "GPU preset: gtx480|teslac2070|gtx280")
		profile    = flag.String("profile", "", "per-kernel profile: solver:M:N[:k], e.g. hybrid:16:65536:7")
		reuse      = flag.String("reuse", "", "compare one-shot vs reusable solver: M:N[:iters], e.g. 64:1024:20")
		faults     = flag.String("faults", "", "fault-injection rate sweep on a reused solver: M:N[:iters], e.g. 64:1024:20")
	)
	flag.Parse()

	if *exp == "list" {
		all := append(bench.Experiments(), bench.Ablations()...)
		all = append(all, bench.Extras()...)
		fmt.Println(strings.Join(all, "\n"))
		return
	}

	env := bench.DefaultEnv()
	if d, ok := gpusim.Devices()[strings.ToLower(*device)]; ok {
		env.GPU = d
	} else {
		fmt.Fprintf(os.Stderr, "tridbench: unknown device %q\n", *device)
		os.Exit(1)
	}
	env.Scale = *scale
	env.Seed = *seed
	env.MeasureCPU = *measureCPU

	if *profile != "" {
		parts := strings.Split(*profile, ":")
		if len(parts) < 3 {
			fmt.Fprintln(os.Stderr, "tridbench: -profile wants solver:M:N[:k]")
			os.Exit(1)
		}
		var m, n int
		k := -1
		fmt.Sscan(parts[1], &m)
		fmt.Sscan(parts[2], &n)
		if len(parts) > 3 {
			fmt.Sscan(parts[3], &k)
		}
		out, err := env.Profile(parts[0], m, n, k)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tridbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(out)
		return
	}

	if *reuse != "" {
		if err := runReuse(*reuse, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "tridbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *faults != "" {
		if err := runFaultSweep(*faults, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "tridbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	ids := bench.Experiments()
	switch *exp {
	case "all":
	case "ablations":
		ids = bench.Ablations()
	case "extras":
		ids = bench.Extras()
	case "everything":
		ids = append(ids, bench.Ablations()...)
		ids = append(ids, bench.Extras()...)
	default:
		ids = strings.Split(*exp, ",")
	}
	start := time.Now()
	for _, id := range ids {
		id = strings.TrimSpace(id)
		var t *bench.Table
		var err error
		if strings.HasPrefix(id, "ablation-") {
			t, err = env.RunAblation(id)
		} else if strings.HasPrefix(id, "extra-") {
			t, err = env.RunExtra(id)
		} else {
			t, err = env.Run(id)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "tridbench: %v\n", err)
			os.Exit(1)
		}
		if *csv {
			fmt.Printf("# %s: %s\n%s\n", t.ID, t.Title, t.CSV())
		} else {
			fmt.Println(t.Format())
		}
	}
	fmt.Fprintf(os.Stderr, "tridbench: completed %d experiment(s) in %v (scale=%d)\n",
		len(ids), time.Since(start).Round(time.Millisecond), *scale)
}

// runReuse wall-clocks the one-shot solver against a reused Pipeline at
// the given shape and reports per-solve time and heap allocations for
// each. The reused path must produce bitwise-identical solutions.
func runReuse(spec string, seed uint64) error {
	parts := strings.Split(spec, ":")
	if len(parts) < 2 {
		return fmt.Errorf("-reuse wants M:N[:iters]")
	}
	var m, n int
	iters := 20
	fmt.Sscan(parts[0], &m)
	fmt.Sscan(parts[1], &n)
	if len(parts) > 2 {
		fmt.Sscan(parts[2], &iters)
	}
	if m <= 0 || n <= 0 || iters <= 0 {
		return fmt.Errorf("-reuse wants positive M:N[:iters], got %q", spec)
	}

	batch := workload.Batch[float64](workload.DiagDominant, m, n, seed)
	cfg := core.Config{K: core.KAuto}

	// One-shot: a fresh pipeline (arenas + event recording) per solve.
	var ref []float64
	oneShotTime, oneShotAllocs, err := timeSolves(iters, func() error {
		x, _, err := core.Solve(cfg, batch)
		ref = x
		return err
	})
	if err != nil {
		return err
	}

	// Reused: one warmed pipeline, replayed solves into a caller arena.
	p, err := core.NewPipeline[float64](cfg, m, n)
	if err != nil {
		return err
	}
	defer p.Close()
	dst := make([]float64, m*n)
	if err := p.SolveInto(dst, batch); err != nil { // recording solve
		return err
	}
	reuseTime, reuseAllocs, err := timeSolves(iters, func() error {
		return p.SolveInto(dst, batch)
	})
	if err != nil {
		return err
	}

	for i := range ref {
		if dst[i] != ref[i] {
			return fmt.Errorf("reuse mismatch at element %d: %v != %v", i, dst[i], ref[i])
		}
	}

	fmt.Printf("reuse comparison: M=%d N=%d k=%d iters=%d (float64, %s)\n",
		m, n, p.K(), iters, p.Device().Name)
	fmt.Printf("  %-10s %14s %14s\n", "mode", "time/solve", "allocs/solve")
	fmt.Printf("  %-10s %14v %14d\n", "one-shot", oneShotTime, oneShotAllocs)
	fmt.Printf("  %-10s %14v %14d\n", "reuse", reuseTime, reuseAllocs)
	fmt.Printf("  speedup %.2fx, solutions bitwise identical\n",
		float64(oneShotTime)/float64(reuseTime))
	return nil
}

// runFaultSweep replays solves on one reused pipeline while sweeping
// the transient-fault injection rate, reporting the recovery layer's
// activity (faults seen, shard retries, degraded systems, wasted
// modeled device time) and the wall-clock overhead relative to the
// fault-free baseline. Recovered solutions are checked bitwise against
// the fault-free reference — the checkpointed-retry guarantee.
func runFaultSweep(spec string, seed uint64) error {
	parts := strings.Split(spec, ":")
	if len(parts) < 2 {
		return fmt.Errorf("-faults wants M:N[:iters]")
	}
	var m, n int
	iters := 20
	fmt.Sscan(parts[0], &m)
	fmt.Sscan(parts[1], &n)
	if len(parts) > 2 {
		fmt.Sscan(parts[2], &iters)
	}
	if m <= 0 || n <= 0 || iters <= 0 {
		return fmt.Errorf("-faults wants positive M:N[:iters], got %q", spec)
	}

	batch := workload.Batch[float64](workload.DiagDominant, m, n, seed)
	dev := gpusim.GTX480()
	cfg := core.Config{K: core.KAuto, Device: dev}
	p, err := core.NewPipeline[float64](cfg, m, n)
	if err != nil {
		return err
	}
	defer p.Close()
	dst := make([]float64, m*n)
	if err := p.SolveInto(dst, batch); err != nil { // recording solve, fault-free
		return err
	}
	ref := make([]float64, m*n)
	copy(ref, dst)

	rates := []float64{0, 0.01, 0.02, 0.05, 0.1}
	fmt.Printf("fault-rate sweep: M=%d N=%d k=%d iters=%d (float64, %s)\n",
		m, n, p.K(), iters, dev.Name)
	fmt.Printf("  %-6s %12s %8s %8s %9s %13s %9s\n",
		"rate", "time/solve", "faults", "retries", "degraded", "wasted(dev)", "overhead")
	var base time.Duration
	for _, rate := range rates {
		if rate == 0 {
			dev.Faults = nil
		} else {
			dev.Faults = &gpusim.Injector{Seed: seed, Rate: rate}
		}
		var faults, retries, degraded int
		var wasted time.Duration
		elapsed, _, err := timeSolves(iters, func() error {
			if err := p.SolveInto(dst, batch); err != nil {
				return err
			}
			if fr := p.Report().Faults; fr != nil {
				faults += fr.Faults
				retries += fr.TotalRetries()
				degraded += len(fr.Degraded)
				wasted += fr.WastedModeledTime
			}
			return nil
		})
		if err != nil {
			return err
		}
		if degraded == 0 {
			for i := range ref {
				if dst[i] != ref[i] {
					return fmt.Errorf("rate %g: recovered solution differs at element %d: %v != %v",
						rate, i, dst[i], ref[i])
				}
			}
		}
		overhead := "1.00x"
		if rate == 0 {
			base = elapsed
		} else if base > 0 {
			overhead = fmt.Sprintf("%.2fx", float64(elapsed)/float64(base))
		}
		fmt.Printf("  %-6g %12v %8d %8d %9d %13v %9s\n",
			rate, elapsed, faults, retries, degraded,
			(wasted / time.Duration(iters)).Round(time.Nanosecond), overhead)
	}
	dev.Faults = nil
	fmt.Printf("  recovered solutions bitwise identical to fault-free where no system degraded\n")
	return nil
}

// timeSolves runs fn iters times, returning mean wall-clock time and
// mean heap allocation count per call.
func timeSolves(iters int, fn func() error) (time.Duration, uint64, error) {
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	for i := 0; i < iters; i++ {
		if err := fn(); err != nil {
			return 0, 0, err
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)
	return elapsed / time.Duration(iters), (ms1.Mallocs - ms0.Mallocs) / uint64(iters), nil
}
