// Command tridtune runs the autotuning pass of §III.D for one batch
// shape: it solves a synthetic batch at every feasible PCR depth k and
// reports the modeled execution time of each, the winner, and the
// paper's Table III heuristic for comparison. The paper notes this
// "can be done only once" per hardware and amortized afterwards.
//
//	tridtune -m 16 -n 65536
//	tridtune -m 256 -n 4096 -device teslac2070 -prec 32
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"gputrid/internal/core"
	"gputrid/internal/gpusim"
)

func main() {
	var (
		m      = flag.Int("m", 16, "number of systems")
		n      = flag.Int("n", 16384, "rows per system")
		device = flag.String("device", "gtx480", "GPU preset: gtx480|teslac2070|gtx280")
		prec   = flag.Int("prec", 64, "precision: 32 or 64")
	)
	flag.Parse()

	dev, ok := gpusim.Devices()[strings.ToLower(*device)]
	if !ok {
		fmt.Fprintf(os.Stderr, "tridtune: unknown device %q\n", *device)
		os.Exit(1)
	}

	var best int
	var times []float64
	switch *prec {
	case 32:
		best, times = core.TuneK[float32](dev, *m, *n)
	case 64:
		best, times = core.TuneK[float64](dev, *m, *n)
	default:
		fmt.Fprintln(os.Stderr, "tridtune: -prec must be 32 or 64")
		os.Exit(1)
	}

	fmt.Printf("autotuning M=%d N=%d on %s (float%d)\n\n", *m, *n, dev.Name, *prec)
	fmt.Printf("%3s  %12s  %s\n", "k", "modeled[us]", "")
	for k, tm := range times {
		if tm >= 1e300 {
			fmt.Printf("%3d  %12s\n", k, "infeasible")
			continue
		}
		mark := ""
		if k == best {
			mark = "  <- tuned"
		}
		if k == core.HeuristicK(*m) {
			mark += "  (Table III heuristic)"
		}
		fmt.Printf("%3d  %12.1f%s\n", k, tm*1e6, mark)
	}
	fmt.Printf("\ntuned k = %d; paper heuristic k = %d\n", best, core.HeuristicK(*m))
}
