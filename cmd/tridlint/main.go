// Command tridlint runs this repository's project-invariant analyzers
// over the given package patterns and exits non-zero on any finding.
//
// Usage:
//
//	go run ./cmd/tridlint ./...
//	go run ./cmd/tridlint -list
//	go run ./cmd/tridlint -only clockinject,errcompare ./internal/pool
//
// The analyzers encode invariants prose review keeps missing: clock
// injection in the serving control plane (clockinject), context
// threading through solve paths (ctxsolve), allocation-free hot-path
// kernels (hotpathalloc), mutex rank ordering (lockorder), and
// errors.Is/As discipline for typed errors (errcompare). CI runs this
// as a blocking tier-1 step; see DESIGN.md §11.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"gputrid/internal/analysis"
	"gputrid/internal/analysis/clockinject"
	"gputrid/internal/analysis/ctxsolve"
	"gputrid/internal/analysis/errcompare"
	"gputrid/internal/analysis/hotpathalloc"
	"gputrid/internal/analysis/lockorder"
)

// registry is the full analyzer suite, in stable reporting order.
var registry = []*analysis.Analyzer{
	clockinject.Analyzer,
	ctxsolve.Analyzer,
	errcompare.Analyzer,
	hotpathalloc.Analyzer,
	lockorder.Analyzer,
}

func main() {
	var (
		list = flag.Bool("list", false, "list available analyzers and exit")
		only = flag.String("only", "", "comma-separated subset of analyzers to run (default: all)")
		dir  = flag.String("C", ".", "directory to resolve package patterns in")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: tridlint [-C dir] [-only a,b] [packages...]\n\n"+
				"Runs the gputrid project-invariant analyzers (default pattern ./...).\n"+
				"Exits 1 when any finding is reported, 2 on usage or load errors.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range registry {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tridlint:", err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := analysis.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tridlint:", err)
		os.Exit(2)
	}

	found := 0
	for _, pkg := range pkgs {
		findings, err := analysis.Run(pkg, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tridlint:", err)
			os.Exit(2)
		}
		for _, f := range findings {
			fmt.Println(f)
			found++
		}
	}
	if found > 0 {
		fmt.Fprintf(os.Stderr, "tridlint: %d finding(s)\n", found)
		os.Exit(1)
	}
}

// selectAnalyzers resolves the -only flag against the registry.
func selectAnalyzers(only string) ([]*analysis.Analyzer, error) {
	if only == "" {
		return registry, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(registry))
	for _, a := range registry {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (see -list)", name)
		}
		out = append(out, a)
	}
	return out, nil
}
