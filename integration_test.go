package gputrid

// Integration tests: whole-application flows exercised through the
// public API, mirroring the runnable examples — implicit heat stepping,
// cubic splines, ADI Poisson — plus cross-algorithm agreement across
// every module boundary in one place.

import (
	"math"
	"testing"

	"gputrid/internal/cpu"
	"gputrid/internal/davidson"
	"gputrid/internal/matrix"
	"gputrid/internal/pcr"
	"gputrid/internal/workload"
)

// TestIntegrationHeatStepping integrates the 1-D heat equation
// implicitly for a batch of rods and compares against the analytic
// decay of the fundamental mode.
func TestIntegrationHeatStepping(t *testing.T) {
	const (
		rods, n = 8, 256
		alpha   = 0.1
		steps   = 20
		dt      = 0.001
	)
	dx := 1.0 / float64(n+1)
	lambda := alpha * dt / (dx * dx)

	u := make([][]float64, rods)
	for m := range u {
		u[m] = make([]float64, n)
		for j := 0; j < n; j++ {
			u[m][j] = math.Sin(math.Pi * float64(j+1) * dx)
		}
	}
	b := NewBatch[float64](rods, n)
	for s := 0; s < steps; s++ {
		for m := 0; m < rods; m++ {
			base := m * n
			for j := 0; j < n; j++ {
				if j > 0 {
					b.Lower[base+j] = -lambda
				}
				b.Diag[base+j] = 1 + 2*lambda
				if j < n-1 {
					b.Upper[base+j] = -lambda
				}
				b.RHS[base+j] = u[m][j]
			}
		}
		res, err := SolveBatch(b, WithVerification())
		if err != nil {
			t.Fatalf("step %d: %v", s, err)
		}
		for m := 0; m < rods; m++ {
			copy(u[m], res.X[m*n:(m+1)*n])
		}
	}
	decay := math.Exp(-math.Pi * math.Pi * alpha * float64(steps) * dt)
	mid := u[0][n/2]
	exact := math.Sin(math.Pi*0.5*(1+1.0/float64(n+1))) * decay
	if e := math.Abs(mid - exact); e > 5e-3 {
		t.Errorf("heat midpoint error %g (got %g, want ~%g)", e, mid, exact)
	}
}

// TestIntegrationSplineInterpolation fits a natural cubic spline
// through sin(2πx) and checks midpoint interpolation error.
func TestIntegrationSplineInterpolation(t *testing.T) {
	const knots = 129
	h := 1.0 / float64(knots-1)
	y := make([]float64, knots)
	for j := range y {
		y[j] = math.Sin(2 * math.Pi * float64(j) * h)
	}
	n := knots - 2
	b := NewBatch[float64](1, n)
	for j := 0; j < n; j++ {
		if j > 0 {
			b.Lower[j] = 1
		}
		b.Diag[j] = 4
		if j < n-1 {
			b.Upper[j] = 1
		}
		b.RHS[j] = 6 * (y[j] - 2*y[j+1] + y[j+2]) / (h * h)
	}
	res, err := SolveBatch(b, WithVerification())
	if err != nil {
		t.Fatal(err)
	}
	msec := make([]float64, knots)
	copy(msec[1:knots-1], res.X)
	var worst float64
	for j := 0; j < knots-1; j++ {
		x := (float64(j) + 0.5) * h
		a := y[j]
		bb := (y[j+1]-y[j])/h - h*(2*msec[j]+msec[j+1])/6
		cc := msec[j] / 2
		dd := (msec[j+1] - msec[j]) / (6 * h)
		tt := x - float64(j)*h
		s := a + tt*(bb+tt*(cc+tt*dd))
		if e := math.Abs(s - math.Sin(2*math.Pi*x)); e > worst {
			worst = e
		}
	}
	if worst > 1e-4 {
		t.Errorf("spline midpoint error %g", worst)
	}
}

// TestIntegrationADIPoisson runs a few ADI sweeps on a small grid and
// requires monotone residual reduction.
func TestIntegrationADIPoisson(t *testing.T) {
	const nx, ny, sweeps = 48, 40, 24
	// Near-optimal fixed Peaceman-Rachford parameter: the geometric
	// mean of the extreme Laplacian eigenvalues for this grid.
	const rho = 300.0
	hx, hy := 1.0/float64(nx+1), 1.0/float64(ny+1)
	u := make([]float64, nx*ny)
	f := make([]float64, nx*ny)
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			f[j*nx+i] = 1
		}
	}
	idx := func(i, j int) int { return j*nx + i }
	ypart := func(i, j int) float64 {
		c := u[idx(i, j)]
		var d, up float64
		if j > 0 {
			d = u[idx(i, j-1)]
		}
		if j < ny-1 {
			up = u[idx(i, j+1)]
		}
		return (d - 2*c + up) / (hy * hy)
	}
	xpart := func(i, j int) float64 {
		c := u[idx(i, j)]
		var l, r float64
		if i > 0 {
			l = u[idx(i-1, j)]
		}
		if i < nx-1 {
			r = u[idx(i+1, j)]
		}
		return (l - 2*c + r) / (hx * hx)
	}
	residual := func() float64 {
		var worst float64
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				if e := math.Abs(-xpart(i, j) - ypart(i, j) - f[idx(i, j)]); e > worst {
					worst = e
				}
			}
		}
		return worst
	}
	r0 := residual()
	for s := 0; s < sweeps; s++ {
		bx := NewBatch[float64](ny, nx)
		for j := 0; j < ny; j++ {
			base := j * nx
			for i := 0; i < nx; i++ {
				if i > 0 {
					bx.Lower[base+i] = -1 / (hx * hx)
				}
				bx.Diag[base+i] = 2/(hx*hx) + rho
				if i < nx-1 {
					bx.Upper[base+i] = -1 / (hx * hx)
				}
				bx.RHS[base+i] = f[idx(i, j)] + ypart(i, j) + rho*u[idx(i, j)]
			}
		}
		res, err := SolveBatch(bx)
		if err != nil {
			t.Fatal(err)
		}
		copy(u, res.X)

		by := NewBatch[float64](nx, ny)
		for i := 0; i < nx; i++ {
			base := i * ny
			for j := 0; j < ny; j++ {
				if j > 0 {
					by.Lower[base+j] = -1 / (hy * hy)
				}
				by.Diag[base+j] = 2/(hy*hy) + rho
				if j < ny-1 {
					by.Upper[base+j] = -1 / (hy * hy)
				}
				by.RHS[base+j] = f[idx(i, j)] + xpart(i, j) + rho*u[idx(i, j)]
			}
		}
		res, err = SolveBatch(by)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < nx; i++ {
			for j := 0; j < ny; j++ {
				u[idx(i, j)] = res.X[i*ny+j]
			}
		}
	}
	r1 := residual()
	if r1 > r0/10 {
		t.Errorf("ADI residual only %g -> %g after %d sweeps", r0, r1, sweeps)
	}
}

// TestIntegrationAllSolversAgree pushes one batch through every solver
// family in the module and demands pairwise agreement.
func TestIntegrationAllSolversAgree(t *testing.T) {
	m, n := 6, 400
	b := workload.Batch[float64](workload.DiagDominant, m, n, 99)

	results := map[string][]float64{}

	res, err := SolveBatch(b)
	if err != nil {
		t.Fatal(err)
	}
	results["hybrid"] = res.X

	res, err = SolveBatch(b, WithK(0))
	if err != nil {
		t.Fatal(err)
	}
	results["pthomas"] = res.X

	res, err = SolveBatch(b, WithK(5), WithKernelFusion())
	if err != nil {
		t.Fatal(err)
	}
	results["fused"] = res.X

	if x, err := cpu.SolveBatchSeq(b); err != nil {
		t.Fatal(err)
	} else {
		results["thomas-cpu"] = x
	}

	if x, _, err := davidson.Solve(davidson.Config{}, b); err != nil {
		t.Fatal(err)
	} else {
		results["davidson"] = x
	}

	perSys := make([]float64, m*n)
	for i := 0; i < m; i++ {
		copy(perSys[i*n:], pcr.SolveCR(b.System(i)))
	}
	results["cr"] = perSys

	ref := results["thomas-cpu"]
	for name, x := range results {
		if d := matrix.MaxRelDiff(x, ref); d > 1e-8 {
			t.Errorf("%s differs from thomas-cpu by %g", name, d)
		}
	}
}

// TestIntegrationFloat32EndToEnd runs a full application-style flow in
// single precision.
func TestIntegrationFloat32EndToEnd(t *testing.T) {
	b := workload.Batch[float32](workload.Heat, 32, 512, 4)
	res, err := SolveBatch(b, WithVerification())
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 6 {
		t.Errorf("k = %d, want 6 for M=32", res.K)
	}
}
