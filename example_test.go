package gputrid_test

import (
	"fmt"

	"gputrid"
)

// ExampleSolve solves one diagonally dominant system and prints the
// head of the solution.
func ExampleSolve() {
	n := 8
	s := gputrid.NewSystem[float64](n)
	for i := 0; i < n; i++ {
		if i > 0 {
			s.Lower[i] = -1
		}
		if i < n-1 {
			s.Upper[i] = -1
		}
		s.Diag[i] = 4
		s.RHS[i] = 2
	}
	res, err := gputrid.Solve(s, gputrid.WithVerification())
	if err != nil {
		panic(err)
	}
	fmt.Printf("%.4f %.4f %.4f\n", res.X[0], res.X[1], res.X[2])
	// Output: 0.7320 0.9281 0.9804
}

// ExampleSolveBatch solves many systems at once; the hybrid picks the
// number of PCR steps from the batch size (Table III).
func ExampleSolveBatch() {
	m, n := 64, 32
	b := gputrid.NewBatch[float64](m, n)
	for i := 0; i < m*n; i++ {
		b.Diag[i] = 2
		b.RHS[i] = 1
	}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			if j > 0 {
				b.Lower[i*n+j] = -0.5
			}
			if j < n-1 {
				b.Upper[i*n+j] = -0.5
			}
		}
	}
	res, err := gputrid.SolveBatch(b)
	if err != nil {
		panic(err)
	}
	fmt.Printf("k=%d residual<=%v\n", res.K, gputrid.Residual(b, res.X) < 1e-12)
	// Output: k=5 residual<=true
}

// ExampleWithK pins the algorithm-transition point manually.
func ExampleWithK() {
	s := gputrid.NewSystem[float64](256)
	for i := 0; i < 256; i++ {
		s.Diag[i] = 3
		s.RHS[i] = 1
	}
	res, err := gputrid.Solve(s, gputrid.WithK(4))
	if err != nil {
		panic(err)
	}
	fmt.Println(res.K, res.BlocksPerSystem > 0)
	// Output: 4 true
}

// ExampleConditionEst estimates conditioning before trusting the
// non-pivoting fast path.
func ExampleConditionEst() {
	s := gputrid.NewSystem[float64](4)
	for i := 0; i < 4; i++ {
		s.Diag[i] = 1 // identity: perfectly conditioned
	}
	fmt.Printf("%.0f\n", gputrid.ConditionEst(s))
	// Output: 1
}
