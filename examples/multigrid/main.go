// Multigrid: semi-coarsening multigrid for an anisotropic elliptic
// problem — the paper's multi-grid motivation (refs [9][10], Göddeke &
// Strzodka use exactly this pairing: tridiagonal line smoothers inside
// a semi-coarsened hierarchy).
//
// The problem is −(ε·u_xx + u_yy) = f on the unit square (ε ≪ 1:
// strong coupling in y). Point smoothers stall on such anisotropy; the
// standard cure is zebra y-LINE relaxation — every half-sweep solves
// one tridiagonal system per grid column, a natural batch for the
// solver — combined with coarsening in x only.
//
// The example runs V-cycles against the manufactured solution
// u* = sin(3πx)·sin(2πy) and checks the per-cycle residual contraction
// and the final discretization-level error.
//
// Run with: go run ./examples/multigrid
package main

import (
	"fmt"
	"log"
	"math"

	"gputrid"
)

const (
	eps    = 0.01 // anisotropy: eps*u_xx + u_yy
	nyGrid = 127  // interior y points (fixed across levels)
	nxFine = 127  // interior x points on the finest level
	cycles = 10
)

// level holds one x-semicoarsened grid level.
type level struct {
	nx, ny int
	hx, hy float64
	u, f   []float64 // nx*ny, column-major: index = i*ny + j
}

func newLevel(nx, ny int) *level {
	return &level{
		nx: nx, ny: ny,
		hx: 1.0 / float64(nx+1), hy: 1.0 / float64(ny+1),
		u: make([]float64, nx*ny), f: make([]float64, nx*ny),
	}
}

func (l *level) at(i, j int) float64 {
	if i < 0 || i >= l.nx || j < 0 || j >= l.ny {
		return 0
	}
	return l.u[i*l.ny+j]
}

// residual returns r = f + eps*u_xx + u_yy (pointwise) and its max norm.
func (l *level) residual() ([]float64, float64) {
	r := make([]float64, l.nx*l.ny)
	var worst float64
	for i := 0; i < l.nx; i++ {
		for j := 0; j < l.ny; j++ {
			uxx := (l.at(i-1, j) - 2*l.at(i, j) + l.at(i+1, j)) / (l.hx * l.hx)
			uyy := (l.at(i, j-1) - 2*l.at(i, j) + l.at(i, j+1)) / (l.hy * l.hy)
			v := l.f[i*l.ny+j] + eps*uxx + uyy
			r[i*l.ny+j] = v
			if a := math.Abs(v); a > worst {
				worst = a
			}
		}
	}
	return r, worst
}

// zebraSweep performs one zebra y-line relaxation: solve every column
// of one parity exactly (a batched tridiagonal solve), then the other.
func (l *level) zebraSweep() error {
	for parity := 1; parity >= 0; parity-- {
		var cols []int
		for i := parity; i < l.nx; i += 2 {
			cols = append(cols, i)
		}
		if len(cols) == 0 {
			continue
		}
		b := gputrid.NewBatch[float64](len(cols), l.ny)
		ax := eps / (l.hx * l.hx)
		ay := 1 / (l.hy * l.hy)
		for ci, i := range cols {
			base := ci * l.ny
			for j := 0; j < l.ny; j++ {
				if j > 0 {
					b.Lower[base+j] = -ay
				}
				b.Diag[base+j] = 2*ax + 2*ay
				if j < l.ny-1 {
					b.Upper[base+j] = -ay
				}
				b.RHS[base+j] = l.f[i*l.ny+j] + ax*(l.at(i-1, j)+l.at(i+1, j))
			}
		}
		res, err := gputrid.SolveBatch(b)
		if err != nil {
			return err
		}
		for ci, i := range cols {
			copy(l.u[i*l.ny:(i+1)*l.ny], res.X[ci*l.ny:(ci+1)*l.ny])
		}
	}
	return nil
}

// vcycle runs one V(1,1) cycle with semi-coarsening in x.
func vcycle(l *level) error {
	if l.nx <= 3 {
		// Coarsest level: relax to convergence (few columns, cheap).
		for s := 0; s < 20; s++ {
			if err := l.zebraSweep(); err != nil {
				return err
			}
		}
		return nil
	}
	if err := l.zebraSweep(); err != nil { // pre-smooth
		return err
	}
	r, _ := l.residual()

	// Restrict in x only (full weighting); y resolution unchanged.
	nxc := (l.nx - 1) / 2
	coarse := newLevel(nxc, l.ny)
	coarse.hy = l.hy
	for ic := 0; ic < nxc; ic++ {
		i := 2*ic + 1
		for j := 0; j < l.ny; j++ {
			get := func(ii int) float64 {
				if ii < 0 || ii >= l.nx {
					return 0
				}
				return r[ii*l.ny+j]
			}
			coarse.f[ic*l.ny+j] = 0.25*get(i-1) + 0.5*get(i) + 0.25*get(i+1)
		}
	}
	if err := vcycle(coarse); err != nil {
		return err
	}

	// Prolongate (linear in x) and correct.
	for i := 0; i < l.nx; i++ {
		for j := 0; j < l.ny; j++ {
			var e float64
			if i%2 == 1 {
				e = coarse.at((i-1)/2, j)
			} else {
				e = 0.5 * (coarse.at(i/2-1, j) + coarse.at(i/2, j))
			}
			l.u[i*l.ny+j] += e
		}
	}
	return l.zebraSweep() // post-smooth
}

func main() {
	fine := newLevel(nxFine, nyGrid)
	for i := 0; i < fine.nx; i++ {
		x := float64(i+1) * fine.hx
		for j := 0; j < fine.ny; j++ {
			y := float64(j+1) * fine.hy
			fine.f[i*fine.ny+j] = (eps*9*math.Pi*math.Pi + 4*math.Pi*math.Pi) *
				math.Sin(3*math.Pi*x) * math.Sin(2*math.Pi*y)
		}
	}

	_, r0 := fine.residual()
	prev := r0
	var worstFactor float64
	for c := 0; c < cycles; c++ {
		if err := vcycle(fine); err != nil {
			log.Fatal(err)
		}
		_, r := fine.residual()
		factor := r / prev
		if c > 0 && factor > worstFactor && r > 1e-10 {
			worstFactor = factor
		}
		fmt.Printf("V-cycle %2d: residual %.3e (contraction %.3f)\n", c+1, r, factor)
		prev = r
	}

	var errInf float64
	for i := 0; i < fine.nx; i++ {
		x := float64(i+1) * fine.hx
		for j := 0; j < fine.ny; j++ {
			y := float64(j+1) * fine.hy
			exact := math.Sin(3*math.Pi*x) * math.Sin(2*math.Pi*y)
			if e := math.Abs(fine.u[i*fine.ny+j] - exact); e > errInf {
				errInf = e
			}
		}
	}
	fmt.Printf("max |u − u*| = %.3e (discretization O(h²) ≈ %.1e)\n",
		errInf, 10*fine.hx*fine.hx)

	switch {
	case worstFactor > 0.35:
		log.Fatalf("multigrid example FAILED: contraction factor %.3f too weak", worstFactor)
	case errInf > 5e-3:
		log.Fatalf("multigrid example FAILED: error %.3e above discretization level", errInf)
	}
	fmt.Println("OK")
}
