// Quickstart: build one tridiagonal system, solve it with the hybrid
// tiled-PCR + p-Thomas solver, and verify the result.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"gputrid"
)

func main() {
	const n = 4096

	// A diagonally dominant system: the 1-D Poisson stencil with a
	// stabilizing shift, right-hand side 1 everywhere.
	sys := gputrid.NewSystem[float64](n)
	for i := 0; i < n; i++ {
		if i > 0 {
			sys.Lower[i] = -1
		}
		if i < n-1 {
			sys.Upper[i] = -1
		}
		sys.Diag[i] = 2.05
		sys.RHS[i] = 1
	}

	res, err := gputrid.Solve(sys, gputrid.WithVerification())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("solved %d unknowns with k=%d PCR steps, %d block(s) per system\n",
		n, res.K, res.BlocksPerSystem)
	fmt.Printf("x[0..4]       = %.6f %.6f %.6f %.6f %.6f\n",
		res.X[0], res.X[1], res.X[2], res.X[3], res.X[4])
	fmt.Printf("x[mid]        = %.6f (interior plateau of the shifted Poisson problem)\n", res.X[n/2])

	b := gputrid.NewBatch[float64](1, n)
	b.SetSystem(0, sys)
	fmt.Printf("residual      = %.3e\n", gputrid.Residual(b, res.X))
	fmt.Printf("modeled time  = %v on %s\n", res.ModeledTime, "GTX480 (simulated)")
	fmt.Printf("device events : %s\n", res.Stats)
}
