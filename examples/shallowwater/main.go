// Shallowwater: Kass & Miller height-field water (paper ref. [2],
// "Rapid, stable fluid dynamics for computer graphics" — the original
// graphics application of batched tridiagonal solvers). The linearized
// shallow-water equations are integrated implicitly with alternating
// x/y sweeps; every sweep solves one tridiagonal system per grid line,
// so each frame is two batches for the hybrid solver and is
// unconditionally stable regardless of wave speed or time step.
//
// The example drops a column of water into a square pool, simulates a
// few hundred frames, and checks the physics: water volume is conserved
// to machine precision, the disturbance propagates outward
// symmetrically, and the implicit damping settles the surface toward
// flat.
//
// Run with: go run ./examples/shallowwater
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"time"

	"gputrid"
)

const (
	nx, ny = 192, 192
	dx     = 1.0
	dt     = 0.2
	grav   = 9.8
	depth  = 1.0 // mean water depth
	frames = 240
)

func main() {
	// h: surface height deviation; v: height velocity (dh/dt).
	h := make([]float64, nx*ny)
	v := make([]float64, nx*ny)
	idx := func(i, j int) int { return j*nx + i }

	// Initial condition: a raised column (volume-neutral check uses the
	// initial total).
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			di, dj := float64(i-nx/2), float64(j-ny/2)
			if r := math.Sqrt(di*di + dj*dj); r < 12 {
				h[idx(i, j)] = 0.5 * (1 + math.Cos(math.Pi*r/12))
			}
		}
	}
	volume0 := sum(h)

	// Kass-Miller implicit step: h' − c²dt² ∂²h'/∂x² = h + dt·v per
	// line, alternating directions (c² = g·depth).
	lam := grav * depth * dt * dt / (dx * dx)

	// The frame loop runs under a deadline: a wedged solve is cancelled
	// cleanly (SolveBatchCtx stops between kernel blocks) instead of
	// hanging an interactive simulation forever.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	stepDir := func(rhs []float64, m, n int, pix func(l, i int) int) ([]float64, error) {
		b := gputrid.NewBatch[float64](m, n)
		for l := 0; l < m; l++ {
			base := l * n
			for i := 0; i < n; i++ {
				// Reflecting boundaries: the end rows lose one neighbor,
				// keeping the operator volume-conserving (row sums of
				// the implicit matrix stay 1 for constant fields).
				nb := 2.0
				if i == 0 || i == n-1 {
					nb = 1.0
				}
				if i > 0 {
					b.Lower[base+i] = -lam
				}
				b.Diag[base+i] = 1 + nb*lam
				if i < n-1 {
					b.Upper[base+i] = -lam
				}
				b.RHS[base+i] = rhs[pix(l, i)]
			}
		}
		res, err := gputrid.SolveBatchCtx(ctx, b)
		if err != nil {
			return nil, err
		}
		out := make([]float64, nx*ny)
		for l := 0; l < m; l++ {
			for i := 0; i < n; i++ {
				out[pix(l, i)] = res.X[l*n+i]
			}
		}
		return out, nil
	}

	var maxOffCenterEarly float64
	var p1, p2, p3, p4 float64
	for f := 0; f < frames; f++ {
		// Target height field before diffusion by the wave operator.
		rhs := make([]float64, nx*ny)
		for p := range rhs {
			rhs[p] = h[p] + dt*v[p]
		}
		hx, err := stepDir(rhs, ny, nx, func(l, i int) int { return idx(i, l) })
		if err != nil {
			log.Fatalf("frame %d x-sweep: %v", f, err)
		}
		hNew, err := stepDir(hx, nx, ny, func(l, i int) int { return idx(l, i) })
		if err != nil {
			log.Fatalf("frame %d y-sweep: %v", f, err)
		}
		for p := range h {
			v[p] = (hNew[p] - h[p]) / dt
			v[p] *= 0.999 // slight damping, as in interactive use
			h[p] = hNew[p]
		}
		if f == 60 {
			// By frame 60 the ring has travelled well away from the
			// center but no boundary reflection has returned: measure
			// the disturbance and its symmetry at radius 40.
			c := nx / 2
			p1, p2 = h[idx(c+40, c)], h[idx(c-40, c)]
			p3, p4 = h[idx(c, c+40)], h[idx(c, c-40)]
			maxOffCenterEarly = math.Abs(p1)
		}
	}

	volume1 := sum(h)
	drift := math.Abs(volume1-volume0) / volume0

	// Before any reflection returns, the ring is fully symmetric: ±x
	// and ±y mirrors agree to roundoff, and so do x vs y — the 1-D
	// implicit operators commute, so the x-then-y sweep order
	// introduces no directional bias at all.
	asym := math.Max(math.Abs(p1-p2), math.Abs(p3-p4))
	splitBias := math.Abs(p1 - p3)

	var maxDev float64
	for _, x := range h {
		if a := math.Abs(x - volume1/float64(nx*ny)); a > maxDev {
			maxDev = a
		}
	}

	fmt.Printf("simulated %d frames of %dx%d Kass-Miller water (λ=%.1f, %d tridiagonal systems/frame)\n",
		frames, nx, ny, lam, nx+ny)
	fmt.Printf("volume drift            = %.2e (must be ~0: implicit operator conserves volume)\n", drift)
	fmt.Printf("wavefront at r=40, f=60 = %.3e (must be nonzero: wave propagated)\n", maxOffCenterEarly)
	fmt.Printf("mirror asymmetry (f=60) = %.2e; x/y sweep bias = %.2e (both ~0)\n", asym, splitBias)
	fmt.Printf("final surface deviation = %.3e (settling toward flat)\n", maxDev)

	switch {
	case drift > 1e-10:
		log.Fatal("shallowwater FAILED: volume not conserved")
	case maxOffCenterEarly < 1e-6:
		log.Fatal("shallowwater FAILED: wave did not propagate")
	case asym > 1e-9:
		log.Fatal("shallowwater FAILED: mirror symmetry broken")
	case splitBias > 1e-9:
		log.Fatal("shallowwater FAILED: sweep order introduced directional bias")
	case maxDev > 0.5:
		log.Fatal("shallowwater FAILED: surface did not settle")
	}
	fmt.Println("OK")
}

func sum(a []float64) float64 {
	var s float64
	for _, x := range a {
		s += x
	}
	return s
}
