// Heat: batched implicit time stepping of the 1-D heat equation — the
// fluid-simulation-style workload (Sakharnykh; paper refs [4][5]) that
// motivates batched tridiagonal solvers: every rod, every time step, is
// one tridiagonal solve, and all rods solve simultaneously.
//
// M rods are integrated with Crank-Nicolson:
//
//	(I − λ/2·L) u^{t+1} = (I + λ/2·L) u^t,  λ = α·Δt/Δx²
//
// Rod m starts as sin((m+1)πx), whose exact solution is
// sin((m+1)πx)·exp(−(m+1)²π²αt), so the example checks its own answer.
//
// Run with: go run ./examples/heat
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"time"

	"gputrid"
)

func main() {
	const (
		rods   = 64   // M independent systems
		n      = 1024 // interior grid points per rod
		alpha  = 0.1
		tEnd   = 0.05
		steps  = 50
		dt     = tEnd / steps
		dx     = 1.0 / (n + 1)
		lambda = alpha * dt / (dx * dx)
	)

	// State: u[m][j], Dirichlet u=0 at both ends.
	u := make([][]float64, rods)
	for m := range u {
		u[m] = make([]float64, n)
		for j := 0; j < n; j++ {
			x := float64(j+1) * dx
			u[m][j] = math.Sin(float64(m%8+1) * math.Pi * x)
		}
	}

	// The implicit matrix is identical for every rod and time step, so
	// build one reusable Solver (arenas allocated once, device events
	// recorded on the first solve) and feed it each step's right-hand
	// side; after the first step every solve is allocation-free.
	b := gputrid.NewBatch[float64](rods, n)
	for m := 0; m < rods; m++ {
		base := m * n
		for j := 0; j < n; j++ {
			if j > 0 {
				b.Lower[base+j] = -lambda / 2
			}
			b.Diag[base+j] = 1 + lambda
			if j < n-1 {
				b.Upper[base+j] = -lambda / 2
			}
		}
	}
	sol, err := gputrid.NewSolver[float64](rods, n)
	if err != nil {
		log.Fatal(err)
	}
	defer sol.Close()

	// The time-stepping loop runs under a deadline: if the integration
	// hangs (or the host is pathologically slow) the context cancels
	// the in-flight solve cleanly instead of wedging the process.
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	x := make([]float64, rods*n)
	for s := 0; s < steps; s++ {
		// Explicit half: d = (I + λ/2 L) u, written straight into the
		// batch's right-hand side.
		for m := 0; m < rods; m++ {
			base := m * n
			for j := 0; j < n; j++ {
				v := (1 - lambda) * u[m][j]
				if j > 0 {
					v += lambda / 2 * u[m][j-1]
				}
				if j < n-1 {
					v += lambda / 2 * u[m][j+1]
				}
				b.RHS[base+j] = v
			}
		}
		if err := sol.SolveBatchIntoCtx(ctx, x, b); err != nil {
			log.Fatalf("step %d: %v", s, err)
		}
		for m := 0; m < rods; m++ {
			copy(u[m], x[m*n:(m+1)*n])
		}
	}

	// Compare every rod with the exact solution.
	var worst float64
	for m := 0; m < rods; m++ {
		mode := float64(m%8 + 1)
		decay := math.Exp(-mode * mode * math.Pi * math.Pi * alpha * tEnd)
		for j := 0; j < n; j++ {
			x := float64(j+1) * dx
			exact := math.Sin(mode*math.Pi*x) * decay
			if e := math.Abs(u[m][j] - exact); e > worst {
				worst = e
			}
		}
	}
	fmt.Printf("integrated %d rods × %d points for %d Crank-Nicolson steps (λ=%.2f, one warmed solver, k=%d)\n",
		rods, n, steps, lambda, sol.K())
	fmt.Printf("max |u − exact| = %.3e (discretization error O(Δt²+Δx²) ≈ %.1e)\n",
		worst, dt*dt+dx*dx)
	if worst > 1e-3 {
		log.Fatal("heat example FAILED: error exceeds discretization estimate")
	}
	fmt.Println("OK")
}
