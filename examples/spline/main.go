// Spline: batched natural cubic-spline interpolation (paper ref. [8] —
// cubic spline calculation is a classic tridiagonal workload). Many
// curves are fitted at once: each curve's second-derivative system is
// tridiagonal (the 1-4-1 system for uniform knots) and all curves solve
// as one batch on the device.
//
// The example fits splines through samples of smooth functions and
// verifies the interpolant at off-knot points against the true
// functions.
//
// Run with: go run ./examples/spline
package main

import (
	"fmt"
	"log"
	"math"

	"gputrid"
)

const (
	curves = 128 // M systems
	knots  = 257 // samples per curve
)

// family returns test function m evaluated at x in [0, 1].
func family(m int, x float64) float64 {
	switch m % 4 {
	case 0:
		return math.Sin(2 * math.Pi * x * float64(m%5+1))
	case 1:
		return math.Exp(-4 * x * math.Cos(float64(m%7)*x))
	case 2:
		return x*x*x - 0.4*x + 0.1*math.Sin(9*x)
	default:
		return 1 / (1 + 25*(x-0.4)*(x-0.4))
	}
}

func main() {
	h := 1.0 / float64(knots-1)
	y := make([][]float64, curves)
	for m := range y {
		y[m] = make([]float64, knots)
		for j := 0; j < knots; j++ {
			y[m][j] = family(m, float64(j)*h)
		}
	}

	// Natural spline second-derivative system: for interior knots
	// M[j-1] + 4 M[j] + M[j+1] = 6 (y[j-1] - 2 y[j] + y[j+1]) / h²,
	// with M = 0 at both ends (rows reduce to the 1-4-1 batch).
	n := knots - 2
	b := gputrid.NewBatch[float64](curves, n)
	for m := 0; m < curves; m++ {
		base := m * n
		for j := 0; j < n; j++ {
			if j > 0 {
				b.Lower[base+j] = 1
			}
			b.Diag[base+j] = 4
			if j < n-1 {
				b.Upper[base+j] = 1
			}
			b.RHS[base+j] = 6 * (y[m][j] - 2*y[m][j+1] + y[m][j+2]) / (h * h)
		}
	}

	res, err := gputrid.SolveBatch(b, gputrid.WithVerification())
	if err != nil {
		log.Fatal(err)
	}

	// Evaluate each spline at midpoints between knots and compare with
	// the true function: cubic splines converge as O(h^4).
	var worst float64
	for m := 0; m < curves; m++ {
		msec := make([]float64, knots) // second derivatives incl. zero ends
		copy(msec[1:knots-1], res.X[m*n:(m+1)*n])
		for j := 0; j < knots-1; j++ {
			x := (float64(j) + 0.5) * h
			// Spline segment j evaluated at its midpoint.
			a := y[m][j]
			bb := (y[m][j+1]-y[m][j])/h - h*(2*msec[j]+msec[j+1])/6
			cc := msec[j] / 2
			dd := (msec[j+1] - msec[j]) / (6 * h)
			t := x - float64(j)*h
			s := a + t*(bb+t*(cc+t*dd))
			if e := math.Abs(s - family(m, x)); e > worst {
				worst = e
			}
		}
	}
	fmt.Printf("fitted %d natural cubic splines of %d knots (k=%d PCR steps)\n",
		curves, knots, res.K)
	fmt.Printf("max |spline − f| at midpoints = %.3e (O(h⁴) ≈ %.1e for the stiffest mode)\n",
		worst, 3e3*h*h*h*h)
	if worst > 1e-2 {
		log.Fatal("spline example FAILED: interpolation error too large")
	}
	fmt.Println("OK")
}
