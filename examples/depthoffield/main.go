// Depthoffield: Kass-Lefohn style interactive depth of field by
// simulated diffusion (paper ref. [1]) — the computer-graphics workload
// of the paper's introduction. Blur is modeled as one implicit step of
// a heat equation whose conductivity is the per-pixel circle of
// confusion; the implicit step requires a tridiagonal solve per image
// row (then per column), all rows being independent systems.
//
// The example renders a synthetic scene (bright disks at different
// depths), diffuses it with a focal plane set to the middle depth, and
// checks the physics: in-focus features stay sharp, out-of-focus
// features spread, and total light energy is conserved.
//
// Run with: go run ./examples/depthoffield
package main

import (
	"fmt"
	"log"
	"math"

	"gputrid"
)

const (
	w, h  = 256, 192
	focal = 0.5 // focal-plane depth
	blur  = 120 // diffusion strength
)

type scene struct {
	img   []float64 // luminance
	depth []float64 // 0 = near, 1 = far
}

func buildScene() *scene {
	s := &scene{img: make([]float64, w*h), depth: make([]float64, w*h)}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			s.depth[y*w+x] = 1 // background far
		}
	}
	disks := []struct {
		cx, cy, r int
		z, lum    float64
	}{
		{48, 96, 22, 0.1, 1.0},  // near: should blur strongly
		{128, 96, 22, 0.5, 1.0}, // in focus: should stay sharp
		{208, 96, 22, 0.9, 1.0}, // far: should blur
	}
	for _, d := range disks {
		for y := d.cy - d.r; y <= d.cy+d.r; y++ {
			for x := d.cx - d.r; x <= d.cx+d.r; x++ {
				if x < 0 || x >= w || y < 0 || y >= h {
					continue
				}
				dx, dy := float64(x-d.cx), float64(y-d.cy)
				if dx*dx+dy*dy <= float64(d.r*d.r) {
					s.img[y*w+x] = d.lum
					s.depth[y*w+x] = d.z
				}
			}
		}
	}
	return s
}

// coc is the squared circle of confusion driving diffusion strength.
func coc(z float64) float64 {
	d := z - focal
	return blur * d * d
}

// diffuseLines performs one implicit diffusion step along each of m
// lines of length n; pix(l, i) maps to the flat image index. The
// conductivity between pixels i and i+1 is the mean of their CoC,
// which keeps the operator symmetric (energy conserving).
func diffuseLines(s *scene, m, n int, pix func(l, i int) int) error {
	b := gputrid.NewBatch[float64](m, n)
	for l := 0; l < m; l++ {
		base := l * n
		for i := 0; i < n; i++ {
			var kl, kr float64
			if i > 0 {
				kl = (coc(s.depth[pix(l, i-1)]) + coc(s.depth[pix(l, i)])) / 2
			}
			if i < n-1 {
				kr = (coc(s.depth[pix(l, i)]) + coc(s.depth[pix(l, i+1)])) / 2
			}
			b.Lower[base+i] = -kl
			b.Upper[base+i] = -kr
			b.Diag[base+i] = 1 + kl + kr
			b.RHS[base+i] = s.img[pix(l, i)]
		}
	}
	res, err := gputrid.SolveBatch(b)
	if err != nil {
		return err
	}
	for l := 0; l < m; l++ {
		for i := 0; i < n; i++ {
			s.img[pix(l, i)] = res.X[l*n+i]
		}
	}
	return nil
}

func energy(img []float64) float64 {
	var e float64
	for _, v := range img {
		e += v
	}
	return e
}

// sharpness measures the maximum horizontal gradient inside a window.
func sharpness(img []float64, cx, cy, r int) float64 {
	var worst float64
	for y := cy - r; y <= cy+r; y++ {
		for x := cx - r; x < cx+r; x++ {
			g := math.Abs(img[y*w+x+1] - img[y*w+x])
			if g > worst {
				worst = g
			}
		}
	}
	return worst
}

func main() {
	s := buildScene()
	e0 := energy(s.img)
	sharpNear0 := sharpness(s.img, 48, 96, 30)
	sharpFocus0 := sharpness(s.img, 128, 96, 30)

	// One ADI-style diffusion step: rows then columns.
	if err := diffuseLines(s, h, w, func(l, i int) int { return l*w + i }); err != nil {
		log.Fatal(err)
	}
	if err := diffuseLines(s, w, h, func(l, i int) int { return i*w + l }); err != nil {
		log.Fatal(err)
	}

	e1 := energy(s.img)
	sharpNear := sharpness(s.img, 48, 96, 30)
	sharpFocus := sharpness(s.img, 128, 96, 30)

	fmt.Printf("diffusion depth-of-field on %dx%d image (%d+%d tridiagonal systems)\n", w, h, h, w)
	fmt.Printf("energy: %.4f -> %.4f (drift %.2e)\n", e0, e1, math.Abs(e1-e0)/e0)
	fmt.Printf("in-focus edge gradient:  %.3f -> %.3f (kept %.0f%%)\n",
		sharpFocus0, sharpFocus, 100*sharpFocus/sharpFocus0)
	fmt.Printf("near-field edge gradient: %.3f -> %.3f (kept %.0f%%)\n",
		sharpNear0, sharpNear, 100*sharpNear/sharpNear0)

	switch {
	case math.Abs(e1-e0)/e0 > 1e-8:
		log.Fatal("FAILED: diffusion did not conserve energy")
	case sharpFocus < 0.5*sharpFocus0:
		log.Fatal("FAILED: in-focus region lost sharpness")
	case sharpNear > 0.5*sharpNear0:
		log.Fatal("FAILED: out-of-focus region stayed sharp")
	}
	fmt.Println("OK")
}
