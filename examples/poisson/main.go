// Poisson: a 2-D Poisson solver built on ADI (alternating-direction
// implicit) line relaxation — the paper's Poisson/multi-grid motivation
// (refs [6][9][10]). Each half-sweep implicitly solves every grid line
// in one direction: a batch of tridiagonal systems, which is exactly
// the solver's sweet spot.
//
// Solves −∇²u = f on the unit square with u = 0 on the boundary and the
// manufactured solution u* = sin(πx)·sin(2πy), iterating ADI sweeps
// until the discrete residual stalls, then comparing against u*.
//
// Run with: go run ./examples/poisson
package main

import (
	"fmt"
	"log"
	"math"

	"gputrid"
)

const (
	nx, ny = 256, 256 // interior points
	sweeps = 60
	rho    = 1.2 // ADI pseudo-time parameter
)

func main() {
	hx := 1.0 / float64(nx+1)
	hy := 1.0 / float64(ny+1)
	u := make([]float64, nx*ny)
	f := make([]float64, nx*ny)
	for j := 0; j < ny; j++ {
		yy := float64(j+1) * hy
		for i := 0; i < nx; i++ {
			xx := float64(i+1) * hx
			f[j*nx+i] = (math.Pi*math.Pi + 4*math.Pi*math.Pi) *
				math.Sin(math.Pi*xx) * math.Sin(2*math.Pi*yy)
		}
	}

	idx := func(i, j int) int { return j*nx + i }
	lap := func(i, j int) (xpart, ypart float64) {
		c := u[idx(i, j)]
		var l, r, d, up float64
		if i > 0 {
			l = u[idx(i-1, j)]
		}
		if i < nx-1 {
			r = u[idx(i+1, j)]
		}
		if j > 0 {
			d = u[idx(i, j-1)]
		}
		if j < ny-1 {
			up = u[idx(i, j+1)]
		}
		return (l - 2*c + r) / (hx * hx), (d - 2*c + up) / (hy * hy)
	}

	residual := func() float64 {
		var worst float64
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				xp, yp := lap(i, j)
				if e := math.Abs(-xp - yp - f[idx(i, j)]); e > worst {
					worst = e
				}
			}
		}
		return worst
	}

	r0 := residual()
	for s := 0; s < sweeps; s++ {
		// Horizontal half-sweep: for each row j solve
		// (rho/hx² tri-diag) u_row = f + ∂²u/∂y² + rho·u.
		bx := gputrid.NewBatch[float64](ny, nx)
		for j := 0; j < ny; j++ {
			base := j * nx
			for i := 0; i < nx; i++ {
				if i > 0 {
					bx.Lower[base+i] = -1 / (hx * hx)
				}
				bx.Diag[base+i] = 2/(hx*hx) + rho
				if i < nx-1 {
					bx.Upper[base+i] = -1 / (hx * hx)
				}
				_, yp := lap(i, j)
				bx.RHS[base+i] = f[idx(i, j)] + yp + rho*u[idx(i, j)]
			}
		}
		res, err := gputrid.SolveBatch(bx)
		if err != nil {
			log.Fatalf("sweep %d (rows): %v", s, err)
		}
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				u[idx(i, j)] = res.X[j*nx+i]
			}
		}

		// Vertical half-sweep, transposed.
		by := gputrid.NewBatch[float64](nx, ny)
		for i := 0; i < nx; i++ {
			base := i * ny
			for j := 0; j < ny; j++ {
				if j > 0 {
					by.Lower[base+j] = -1 / (hy * hy)
				}
				by.Diag[base+j] = 2/(hy*hy) + rho
				if j < ny-1 {
					by.Upper[base+j] = -1 / (hy * hy)
				}
				xp, _ := lap(i, j)
				by.RHS[base+j] = f[idx(i, j)] + xp + rho*u[idx(i, j)]
			}
		}
		res, err = gputrid.SolveBatch(by)
		if err != nil {
			log.Fatalf("sweep %d (cols): %v", s, err)
		}
		for i := 0; i < nx; i++ {
			for j := 0; j < ny; j++ {
				u[idx(i, j)] = res.X[i*ny+j]
			}
		}
	}

	rEnd := residual()
	var errInf float64
	for j := 0; j < ny; j++ {
		yy := float64(j+1) * hy
		for i := 0; i < nx; i++ {
			xx := float64(i+1) * hx
			exact := math.Sin(math.Pi*xx) * math.Sin(2*math.Pi*yy)
			if e := math.Abs(u[idx(i, j)] - exact); e > errInf {
				errInf = e
			}
		}
	}
	fmt.Printf("ADI on %dx%d grid, %d sweeps: residual %.3e -> %.3e (%.1fx reduction)\n",
		nx, ny, sweeps, r0, rEnd, r0/rEnd)
	fmt.Printf("max |u − u*| = %.3e (discretization O(h²) ≈ %.1e)\n", errInf, 40*hx*hx)
	if rEnd > r0/100 || errInf > 1e-2 {
		log.Fatal("poisson example FAILED: insufficient convergence")
	}
	fmt.Println("OK")
}
