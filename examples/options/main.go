// Options: batched finite-difference option pricing — the financial
// PDE workload behind Egloff's large-system PCR solvers (paper refs
// [14][15], "Pricing financial derivatives with high performance
// finite difference solvers on GPUs").
//
// A book of European calls with different volatilities is priced by
// integrating the Black-Scholes PDE backwards in time with
// Crank-Nicolson on a log-price grid. Every time step solves one
// tridiagonal system per option — the whole book is a single batch for
// the hybrid solver. Prices are verified against the closed-form
// Black-Scholes formula.
//
// Run with: go run ./examples/options
package main

import (
	"fmt"
	"log"
	"math"

	"gputrid"
)

const (
	spot    = 100.0
	strike  = 100.0
	rate    = 0.03
	expiry  = 1.0 // years
	nGrid   = 511 // interior log-price points
	nSteps  = 200
	nBook   = 64 // options in the book (distinct vols)
	volLo   = 0.10
	volHi   = 0.60
	logHalf = 3.0 // grid half-width in log-price units
)

// normCDF is the standard normal CDF via erf.
func normCDF(x float64) float64 {
	return 0.5 * (1 + math.Erf(x/math.Sqrt2))
}

// blackScholesCall is the closed-form reference price.
func blackScholesCall(s, k, r, sigma, t float64) float64 {
	d1 := (math.Log(s/k) + (r+sigma*sigma/2)*t) / (sigma * math.Sqrt(t))
	d2 := d1 - sigma*math.Sqrt(t)
	return s*normCDF(d1) - k*math.Exp(-r*t)*normCDF(d2)
}

func main() {
	vols := make([]float64, nBook)
	for i := range vols {
		vols[i] = volLo + (volHi-volLo)*float64(i)/float64(nBook-1)
	}

	h := 2 * logHalf / float64(nGrid+1)
	dt := expiry / nSteps
	xAt := func(j int) float64 { return -logHalf + float64(j+1)*h } // interior nodes

	// Terminal payoff V(x, τ=0) = max(S0·e^x − K, 0) per option.
	v := make([][]float64, nBook)
	for m := range v {
		v[m] = make([]float64, nGrid)
		for j := 0; j < nGrid; j++ {
			if p := spot*math.Exp(xAt(j)) - strike; p > 0 {
				v[m][j] = p
			}
		}
	}

	// Per-option spatial operator L = aL·V_{j-1} + bD·V_j + cU·V_{j+1}.
	aL := make([]float64, nBook)
	bD := make([]float64, nBook)
	cU := make([]float64, nBook)
	for m, sigma := range vols {
		mu := rate - sigma*sigma/2
		aL[m] = sigma*sigma/(2*h*h) - mu/(2*h)
		bD[m] = -sigma*sigma/(h*h) - rate
		cU[m] = sigma*sigma/(2*h*h) + mu/(2*h)
	}

	b := gputrid.NewBatch[float64](nBook, nGrid)
	for step := 1; step <= nSteps; step++ {
		tauNew := float64(step) * dt
		for m := 0; m < nBook; m++ {
			base := m * nGrid
			// Upper boundary value S − K·e^{−rτ} at x = +logHalf.
			bcHiOld := spot*math.Exp(logHalf) - strike*math.Exp(-rate*(tauNew-dt))
			bcHiNew := spot*math.Exp(logHalf) - strike*math.Exp(-rate*tauNew)
			for j := 0; j < nGrid; j++ {
				// Crank-Nicolson: (I − dt/2 L) V^{new} = (I + dt/2 L) V^{old}.
				if j > 0 {
					b.Lower[base+j] = -dt / 2 * aL[m]
				}
				b.Diag[base+j] = 1 - dt/2*bD[m]
				if j < nGrid-1 {
					b.Upper[base+j] = -dt / 2 * cU[m]
				}
				rhs := (1 + dt/2*bD[m]) * v[m][j]
				if j > 0 {
					rhs += dt / 2 * aL[m] * v[m][j-1]
				}
				if j < nGrid-1 {
					rhs += dt / 2 * cU[m] * v[m][j+1]
				}
				// Boundary contributions (lower boundary value is 0).
				if j == nGrid-1 {
					rhs += dt / 2 * cU[m] * (bcHiOld + bcHiNew)
				}
				b.RHS[base+j] = rhs
			}
		}
		res, err := gputrid.SolveBatch(b)
		if err != nil {
			log.Fatalf("step %d: %v", step, err)
		}
		for m := 0; m < nBook; m++ {
			copy(v[m], res.X[m*nGrid:(m+1)*nGrid])
		}
	}

	// Price at S = spot is the x = 0 grid node (interior index).
	j0 := -1
	for j := 0; j < nGrid; j++ {
		if math.Abs(xAt(j)) < h/2 {
			j0 = j
			break
		}
	}
	if j0 < 0 {
		log.Fatal("x = 0 not on grid")
	}

	var worstRel float64
	fmt.Printf("%-8s %-12s %-12s %-10s\n", "vol", "FD price", "closed form", "rel err")
	for m := 0; m < nBook; m += nBook / 8 {
		exact := blackScholesCall(spot, strike, rate, vols[m], expiry)
		rel := math.Abs(v[m][j0]-exact) / exact
		fmt.Printf("%-8.2f %-12.5f %-12.5f %-10.2e\n", vols[m], v[m][j0], exact, rel)
	}
	for m := 0; m < nBook; m++ {
		exact := blackScholesCall(spot, strike, rate, vols[m], expiry)
		if rel := math.Abs(v[m][j0]-exact) / exact; rel > worstRel {
			worstRel = rel
		}
	}
	fmt.Printf("priced %d options × %d steps × %d nodes; worst relative error %.2e\n",
		nBook, nSteps, nGrid, worstRel)
	if worstRel > 5e-3 {
		log.Fatal("options example FAILED: pricing error too large")
	}
	fmt.Println("OK")
}
