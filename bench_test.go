package gputrid

// One testing.B benchmark per table and figure of the paper's
// evaluation section. Each figure benchmark runs a representative point
// of its sweep (sizes reduced from the paper's largest so `go test
// -bench=.` completes quickly) with sub-benchmarks for our solver and
// the baselines it is plotted against. The full-size sweeps that
// regenerate the complete figures live in cmd/tridbench; EXPERIMENTS.md
// records those results.

import (
	"fmt"
	"testing"

	"gputrid/internal/bench"
	"gputrid/internal/core"
	"gputrid/internal/costmodel"
	"gputrid/internal/cpu"
	"gputrid/internal/davidson"
	"gputrid/internal/egloff"
	"gputrid/internal/gpusim"
	"gputrid/internal/tiledpcr"
	"gputrid/internal/workload"
	"gputrid/internal/zhang"
)

func benchEnv() *bench.Env {
	e := bench.DefaultEnv()
	e.Scale = 1
	return e
}

// benchPoint runs the three Fig. 12/13 contenders at one (M, N).
func benchPoint(b *testing.B, m, n int) {
	batch := workload.Batch[float64](workload.DiagDominant, m, n, 7)
	b.Run("ours-sim", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := core.Solve(core.Config{K: core.KAuto}, batch); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("mkl-seq-proxy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := cpu.SolveBatchSeq(batch); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("mkl-mt-proxy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := cpu.SolveBatchParallel(batch, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTable1Window measures the buffered sliding window itself:
// a full k-step streamed reduction at the Table III configuration k=8.
func BenchmarkTable1Window(b *testing.B) {
	s := workload.System[float64](workload.DiagDominant, 1<<14, 3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = tiledpcr.StreamReduce(s, 8)
	}
}

// BenchmarkTable2CostModel measures the Table II closed forms plus the
// optimal-k search they drive.
func BenchmarkTable2CostModel(b *testing.B) {
	p := benchEnv().GPU.HardwareParallelism()
	for i := 0; i < b.N; i++ {
		for m := 1; m <= 1<<20; m <<= 4 {
			_ = costmodel.OptimalK(1<<16, m, p)
		}
	}
}

// BenchmarkTable3Heuristic measures the runtime transition logic: an
// auto-k solve in each of Table III's M ranges.
func BenchmarkTable3Heuristic(b *testing.B) {
	for _, m := range []int{8, 24, 256, 768, 2048} {
		batch := workload.Batch[float64](workload.DiagDominant, m, 256, 5)
		b.Run(byM(m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := core.Solve(core.Config{K: core.KAuto}, batch); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig12a..c: execution time vs M at fixed N (representative
// mid-sweep point).
func BenchmarkFig12a(b *testing.B) { benchPoint(b, 1024, 512) }
func BenchmarkFig12b(b *testing.B) { benchPoint(b, 512, 2048) }
func BenchmarkFig12c(b *testing.B) { benchPoint(b, 128, 16384) }

// BenchmarkFig13a..d: execution time vs N at fixed M.
func BenchmarkFig13a(b *testing.B) { benchPoint(b, 2048, 1024) }
func BenchmarkFig13b(b *testing.B) { benchPoint(b, 256, 8192) }
func BenchmarkFig13c(b *testing.B) { benchPoint(b, 16, 65536) }
func BenchmarkFig13d(b *testing.B) { benchPoint(b, 1, 512*1024) }

// benchDavidson runs the Fig. 14 pair at one shape.
func benchDavidson(b *testing.B, m, n int) {
	batch := workload.Batch[float64](workload.DiagDominant, m, n, 9)
	b.Run("ours-sim", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := core.Solve(core.Config{K: core.KAuto}, batch); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("davidson-sim", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := davidson.Solve(davidson.Config{}, batch); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig14a: ours vs Davidson, double precision (1K×1K shape).
func BenchmarkFig14a(b *testing.B) { benchDavidson(b, 1024, 1024) }

// BenchmarkFig14b: ours vs Davidson, single precision (1K×1K shape).
func BenchmarkFig14b(b *testing.B) {
	batch := workload.Batch[float32](workload.DiagDominant, 1024, 1024, 9)
	b.Run("ours-sim", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := core.Solve(core.Config{K: core.KAuto}, batch); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("davidson-sim", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := davidson.Solve(davidson.Config{}, batch); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPublicAPI measures the end-to-end public entry point.
func BenchmarkPublicAPI(b *testing.B) {
	batch := workload.Batch[float64](workload.DiagDominant, 64, 1024, 11)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := SolveBatch(batch); err != nil {
			b.Fatal(err)
		}
	}
}

func byM(m int) string {
	switch {
	case m < 16:
		return "M<16/k=8"
	case m < 32:
		return "M<32/k=7"
	case m < 512:
		return "M<512/k=6"
	case m < 1024:
		return "M<1024/k=5"
	default:
		return "M>=1024/k=0"
	}
}

// BenchmarkFactorizedReplay compares a full hybrid solve against the
// factor-once/replay path for repeated right-hand sides (the ADI
// time-stepping pattern).
func BenchmarkFactorizedReplay(b *testing.B) {
	batch := workload.Batch[float64](workload.DiagDominant, 16, 4096, 13)
	b.Run("full-solve", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := core.Solve(core.Config{K: 6}, batch); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("replay", func(b *testing.B) {
		f, err := core.FactorHybrid(batch, 6)
		if err != nil {
			b.Fatal(err)
		}
		x := make([]float64, 16*4096)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := f.Solve(batch.RHS, x); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRelatedWork runs the related-work solver family at a small
// shared-memory-friendly shape (extra-small experiment's shape).
func BenchmarkRelatedWork(b *testing.B) {
	batch := workload.Batch[float64](workload.DiagDominant, 64, 512, 15)
	dev := gpusim.GTX480()
	b.Run("zhang-cr", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := zhang.KernelCR(dev, batch, true); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("zhang-pcrthomas", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := zhang.KernelPCRThomas(dev, batch, 5); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("egloff", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := egloff.Solve(dev, batch); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkStreamedWindow measures the pure-Go sliding-window engine.
func BenchmarkStreamedWindow(b *testing.B) {
	s := workload.System[float64](workload.DiagDominant, 1<<16, 17)
	for _, k := range []int{4, 6, 8} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = tiledpcr.StreamReduce(s, k)
			}
		})
	}
}

// BenchmarkCPUReference measures the real (wall-clock) CPU solvers on
// this machine — the only benchmarks here whose absolute numbers are
// hardware measurements rather than model evaluations.
func BenchmarkCPUReference(b *testing.B) {
	batch := workload.Batch[float64](workload.DiagDominant, 256, 1024, 19)
	b.Run("thomas", func(b *testing.B) {
		b.SetBytes(int64(256 * 1024 * 5 * 8))
		for i := 0; i < b.N; i++ {
			if _, err := cpu.SolveBatchSeq(batch); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("gtsv-pivoting", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cpu.SolveBatchGTSV(batch); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("factored", func(b *testing.B) {
		f, err := cpu.FactorBatch(batch)
		if err != nil {
			b.Fatal(err)
		}
		x := make([]float64, 256*1024)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := f.Solve(batch.RHS, x); err != nil {
				b.Fatal(err)
			}
		}
	})
}
