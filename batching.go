package gputrid

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"gputrid/internal/batcher"
	"gputrid/internal/clock"
	"gputrid/internal/cpu"
	"gputrid/internal/matrix"
)

// TimerClock is the injectable time source the batching front-end
// needs: a Clock that can also mint deadline timers. Wall time in
// production; clock.VirtualClock in deterministic tests.
type TimerClock = clock.TimerClock

// Megabatch is the coalesced unit of work the batching front-end
// hands to Pool.SolveMegabatch: Count real systems interleaved in V,
// solution in Xi, per-system outcomes in Verdicts. See the batcher
// package for the field contract.
type Megabatch[T Real] = batcher.Megabatch[T]

// CoalescedResult reports how a batched request travelled: its own
// system count, the size of the megabatch it rode in, rescued
// systems, and queue wait.
type CoalescedResult = batcher.Result

// BatcherStats snapshots the coalescing front-end's counters.
type BatcherStats = batcher.Stats

// Typed batching-layer errors, matchable with errors.Is.
var (
	// ErrBatcherClosed matches solves after Batcher.Close.
	ErrBatcherClosed = batcher.ErrClosed
	// ErrBatcherSaturated matches requests shed because the shape's
	// coalescing queue is full of sealed megabatches — the batching
	// tier's overload signal.
	ErrBatcherSaturated = batcher.ErrSaturated
	// ErrBatcherShapeLimit matches requests for a new row count when
	// the batcher already coalesces its maximum number of shapes.
	ErrBatcherShapeLimit = batcher.ErrShapeLimit
)

// BatcherConfig tunes a coalescing front-end; the zero value is the
// production default (64-system megabatches, 2ms max wait, 200µs
// deadline slack, 8 shapes, 4 queued flights, wall clock). The solve
// and service-time hooks are wired to the Pool by NewBatcher.
type BatcherConfig struct {
	// MaxBatch is the megabatch capacity in systems; it is also the M
	// the pool's megabatch solvers are built for. 0 means 64.
	MaxBatch int
	// MaxWait bounds how long a flight's first request waits for
	// company. 0 means 2ms.
	MaxWait time.Duration
	// SlackMargin is the safety margin subtracted (with the expected
	// service time) from request deadlines when scheduling flushes.
	// 0 means 200µs.
	SlackMargin time.Duration
	// MaxShapes caps live per-N coalescing queues. 0 means 8.
	MaxShapes int
	// MaxQueuedFlights caps sealed megabatches awaiting the solver
	// per shape before Solve sheds. 0 means 4.
	MaxQueuedFlights int
	// Clock drives flush deadlines; nil means wall time.
	Clock TimerClock
}

// Batcher is the dynamic request-coalescing front-end over a Pool:
// concurrent small same-shaped requests are merged into interleaved
// megabatches (born in the layout the k = 0 kernels consume, so the
// coalesced path never pays the blocked transpose) and solved through
// one pooled megabatch solver lease; each caller gets back exactly
// its own systems and its own guard verdicts. Coalesced solutions are
// bitwise identical to solving each request alone at k = 0.
//
// Build one with NewBatcher over an existing Pool; the Pool may keep
// serving direct traffic concurrently (megabatch solvers live in
// their own pool stations, so the two tiers never compete for
// instances). Safe for concurrent use.
type Batcher[T Real] struct {
	pool  *Pool[T]
	inner *batcher.Batcher[T]
}

// NewBatcher builds a coalescing front-end over p. The batcher owns
// no solvers — megabatches acquire the pool's dedicated megabatch
// stations (shape MaxBatch×N, built with PoolConfig.MegabatchOptions)
// — and its flush deadlines are informed by the pool's per-shape
// megabatch service-time EWMA.
func NewBatcher[T Real](p *Pool[T], cfg BatcherConfig) (*Batcher[T], error) {
	maxBatch := cfg.MaxBatch
	if maxBatch <= 0 {
		maxBatch = 64
	}
	inner, err := batcher.New(batcher.Config[T]{
		MaxBatch:         maxBatch,
		MaxWait:          cfg.MaxWait,
		SlackMargin:      cfg.SlackMargin,
		MaxShapes:        cfg.MaxShapes,
		MaxQueuedFlights: cfg.MaxQueuedFlights,
		Clock:            cfg.Clock,
		ServiceTime: func(n int) (time.Duration, bool) {
			return p.inner.ServiceTimeMega(maxBatch, n)
		},
		Solve: p.SolveMegabatch,
	})
	if err != nil {
		return nil, fmt.Errorf("gputrid: %w", err)
	}
	return &Batcher[T]{pool: p, inner: inner}, nil
}

// Solve submits the batch for coalescing and blocks until its flight
// has flushed, returning the caller-owned solution in natural order
// (row j of system i at x[i*N+j]) plus the coalescing report. A batch
// larger than MaxBatch bypasses the coalescer to the pool's direct
// path. Per-system guard failures in the same megabatch fail only the
// requests owning them; errors are typed (ErrBatcherSaturated,
// ErrBatcherClosed, ErrCancelled, ErrOverloaded, ...).
func (b *Batcher[T]) Solve(ctx context.Context, batch *Batch[T]) ([]T, CoalescedResult, error) {
	if batch.M > b.inner.MaxBatch() {
		pr, err := b.pool.Solve(ctx, batch)
		if err != nil {
			return nil, CoalescedResult{}, err
		}
		return pr.X, CoalescedResult{Systems: batch.M, FlushSize: batch.M, Wait: pr.Wait}, nil
	}
	x := make([]T, batch.M*batch.N)
	res, err := b.inner.Solve(ctx, &batcher.Request[T]{
		M: batch.M, N: batch.N,
		Lower: batch.Lower, Diag: batch.Diag, Upper: batch.Upper, RHS: batch.RHS,
		X: x,
	})
	if err != nil {
		return nil, res, fmt.Errorf("gputrid: %w", err)
	}
	return x, res, nil
}

// MaxBatch returns the resolved megabatch capacity.
func (b *Batcher[T]) MaxBatch() int { return b.inner.MaxBatch() }

// Stats snapshots the coalescing counters (flush causes, padding,
// queue depths, shed and cancelled requests).
func (b *Batcher[T]) Stats() BatcherStats { return b.inner.Stats() }

// Close drains the coalescing queues — parked requests flush and
// complete — and rejects further Solves with ErrBatcherClosed. It
// does not close the underlying Pool, which the caller owns.
func (b *Batcher[T]) Close() { b.inner.Close() }

// SolveMegabatch solves one coalesced megabatch through a pooled
// megabatch solver lease: route through the breaker, acquire from the
// shape's dedicated megabatch station, run the interleaved-native
// solve (no transpose at k = 0), then scan per-system residuals from
// the megabatch's own scratch and rescue any failing system on the
// host pivoting path — recording the outcome in that system's Verdict
// so one corrupt system fails only the request that submitted it.
// With the breaker open, every system is served individually on the
// host path instead. A non-nil return fails the whole flight and is
// reserved for infrastructure errors (admission, cancellation,
// unrecovered whole-batch faults).
//
// The batching front-end calls this from its flusher; it is exported
// for callers that assemble their own interleaved megabatches.
func (p *Pool[T]) SolveMegabatch(ctx context.Context, mb *Megabatch[T]) error {
	if mb.Count == 0 {
		return nil
	}
	device, probe := p.inner.Route()
	if !device {
		return p.megaFallback(ctx, mb)
	}

	lease, err := p.inner.AcquireMega(ctx, mb.V.M, mb.V.N)
	if err != nil {
		p.inner.Abandon(probe)
		return fmt.Errorf("gputrid: %w", err)
	}
	s := lease.Solver
	err = s.SolveInterleavedIntoCtx(lease.Ctx, mb.Xi, mb.V)
	svc := s.LastSolveTime()
	faulted := s.FaultReport() != nil
	if err != nil {
		lease.Release(0)
		if errors.Is(err, ErrCancelled) {
			p.inner.Abandon(probe)
		} else {
			p.inner.Record(probe, true)
		}
		return err
	}
	lease.Release(svc)
	// Breaker signal: fault-layer activity marks device degradation;
	// guard failures below do not — they indicate sick input systems,
	// not a sick device.
	p.inner.Record(probe, faulted)

	p.guardMegabatch(mb)
	return nil
}

// guardMegabatch scans per-system residuals (allocation-free, from
// the megabatch's scratch) and rescues failing systems on the host
// pivoting path, filling per-system Verdicts.
func (p *Pool[T]) guardMegabatch(mb *Megabatch[T]) {
	m := mb.V.M
	tol := matrix.ResidualTolerance[T](mb.V.N)
	res := mb.Scratch[:m]
	matrix.ResidualsPerSystemInterleavedInto(res, mb.Scratch[m:], mb.V, mb.Xi, mb.Count)
	for i := 0; i < mb.Count; i++ {
		// NaN residuals (from non-finite inputs) must fail too, so
		// compare through the negation.
		if res[i] <= tol {
			continue
		}
		p.rescueSystem(mb, i, res[i], tol)
	}
}

// rescueSystem re-solves megabatch system i on the host pivoting path
// and writes the verdict. The cold path: it allocates, but only for
// systems that already failed their residual check.
func (p *Pool[T]) rescueSystem(mb *Megabatch[T], i int, r, tol float64) {
	sys := mb.V.ExtractSystem(i)
	x, err := cpu.SolveGTSV(sys)
	if err != nil {
		mb.Verdicts[i].Err = fmt.Errorf(
			"gputrid: system residual %.3e exceeds tolerance %.3e and host rescue failed: %w", r, tol, err)
		return
	}
	if rr := matrix.Residual(sys, x); !(rr <= tol) || math.IsNaN(rr) {
		mb.Verdicts[i].Err = fmt.Errorf(
			"gputrid: system unsolvable within tolerance %.3e (fast %.3e, host rescue %.3e)", tol, r, rr)
		return
	}
	for j := 0; j < mb.V.N; j++ {
		mb.Xi[j*mb.V.M+i] = x[j]
	}
	mb.Verdicts[i].Rescued = true
}

// megaFallback serves a megabatch with the breaker open: every system
// individually on the host pivoting path, with per-system verdicts —
// the megabatch analogue of solveFallback.
func (p *Pool[T]) megaFallback(ctx context.Context, mb *Megabatch[T]) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("gputrid: %w: %w", ErrCancelled, err)
	}
	m, n := mb.V.M, mb.V.N
	tol := matrix.ResidualTolerance[T](n)
	w := cpu.NewGTSVWorkspace[T](n)
	x := make([]T, n)
	for i := 0; i < mb.Count; i++ {
		sys := mb.V.ExtractSystem(i)
		if err := cpu.SolveGTSVInto(sys, x, w); err != nil {
			mb.Verdicts[i].Err = fmt.Errorf("gputrid: fallback: %w", err)
			continue
		}
		if rr := matrix.Residual(sys, x); !(rr <= tol) || math.IsNaN(rr) {
			mb.Verdicts[i].Err = fmt.Errorf(
				"gputrid: fallback residual %.3e exceeds tolerance %.3e", rr, tol)
			continue
		}
		for j := 0; j < n; j++ {
			mb.Xi[j*m+i] = x[j]
		}
	}
	p.inner.RecordFallback()
	return nil
}
