package gputrid

// Fuzz target for the transient-fault-tolerance layer. The engine
// explores fault schedules (kind x kernel x block x repeat) and
// background fault rates searching for a recovery that is anything
// other than the contract: a recovered solve is bitwise identical to
// the fault-free solve (or residual-clean where systems degraded to
// the pivoting fallback), and a failure is a typed error — never NaN,
// never a partially written batch.

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"gputrid/internal/matrix"
	"gputrid/internal/num"
)

func FuzzFaultSchedule(f *testing.F) {
	// seed, m, n, kind, kernel, block, repeat, rate%.
	f.Add(uint32(1), uint8(5), uint8(120), uint8(0), uint8(0), uint8(0), uint8(1), uint8(0))
	f.Add(uint32(2), uint8(8), uint8(200), uint8(1), uint8(2), uint8(0), uint8(2), uint8(0))  // corrupt tiledPCR
	f.Add(uint32(3), uint8(3), uint8(64), uint8(2), uint8(3), uint8(1), uint8(1), uint8(5))   // hang pThomasStrided
	f.Add(uint32(4), uint8(12), uint8(90), uint8(0), uint8(1), uint8(0), uint8(5), uint8(0))  // repeat > retry budget
	f.Add(uint32(5), uint8(6), uint8(150), uint8(1), uint8(0), uint8(0), uint8(0), uint8(10)) // wildcard + rate
	f.Fuzz(func(t *testing.T, seed uint32, mRaw, nRaw, kindRaw, kernRaw, blockRaw, repeatRaw, rateRaw uint8) {
		m := int(mRaw)%12 + 1
		n := int(nRaw)%192 + 1
		r := num.NewRNG(uint64(seed) + 3)
		b := NewBatch[float64](m, n)
		for i := 0; i < m; i++ {
			base := i * n
			for j := 0; j < n; j++ {
				var a, c float64
				if j > 0 {
					a = r.Range(-1, 1)
				}
				if j < n-1 {
					c = r.Range(-1, 1)
				}
				b.Lower[base+j] = a
				b.Upper[base+j] = c
				b.Diag[base+j] = math.Abs(a) + math.Abs(c) + r.Range(0.5, 1.5)
				b.RHS[base+j] = r.Range(-100, 100)
			}
		}
		clean, err := SolveBatch(b)
		if err != nil {
			t.Fatalf("fault-free reference m=%d n=%d: %v", m, n, err)
		}

		kernels := []string{"", "pThomas", "tiledPCR", "pThomasStrided"}
		inj := &FaultInjector{
			Seed: uint64(seed),
			Rate: float64(int(rateRaw)%16) / 100, // 0 .. 0.15
			Schedule: []ScheduledFault{{
				Kernel: kernels[int(kernRaw)%len(kernels)],
				Block:  int(blockRaw)%8 - 1, // -1 (any block) .. 6
				Kind:   DeviceFaultKind(kindRaw) % 3,
				Repeat: int(repeatRaw) % 6, // 0 (default 1) .. 5: may exhaust the budget
			}},
		}
		s, err := NewSolver[float64](m, n,
			WithFaultInjection(inj),
			WithRetry(RetryPolicy{BaseBackoff: time.Microsecond, MaxBackoff: 10 * time.Microsecond}),
			WithWatchdog(time.Microsecond))
		if err != nil {
			t.Fatalf("NewSolver m=%d n=%d: %v", m, n, err)
		}
		defer s.Close()

		dst := make([]float64, m*n)
		tol := matrix.ResidualTolerance[float64](n)
		for iter := 0; iter < 2; iter++ { // recording solve, then one replay
			err := s.SolveBatchIntoCtx(context.Background(), dst, b)
			if err != nil {
				if !errors.Is(err, ErrFaulted) && !errors.Is(err, ErrCancelled) {
					t.Fatalf("iter %d: untyped failure %v (inj %+v)", iter, err, inj.Schedule[0])
				}
				continue
			}
			for i, v := range dst {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("iter %d: non-finite element %d = %v after recovered solve (inj %+v)",
						iter, i, v, inj.Schedule[0])
				}
			}
			degraded := make(map[int]bool)
			if fr := s.FaultReport(); fr != nil {
				for _, sys := range fr.Degraded {
					degraded[sys] = true
				}
			}
			for i := 0; i < m; i++ {
				row := dst[i*n : (i+1)*n]
				if degraded[i] {
					// Rescued by the pivoting fallback: not bitwise, but
					// it must still solve the system.
					if res := matrix.Residual(b.System(i), row); !(res <= tol) {
						t.Fatalf("iter %d: degraded system %d residual %.3e > %.3e (inj %+v)",
							iter, i, res, tol, inj.Schedule[0])
					}
					continue
				}
				for j, v := range row {
					if v != clean.X[i*n+j] {
						t.Fatalf("iter %d: system %d element %d = %v, fault-free = %v (inj %+v)",
							iter, i, j, v, clean.X[i*n+j], inj.Schedule[0])
					}
				}
			}
		}
	})
}
