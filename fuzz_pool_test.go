package gputrid

// Fuzz target for the serving pool's admission control. The engine
// explores (shape, deadline, cancel-at) schedules fired concurrently
// at a deliberately tiny pool, searching for any outcome other than
// the contract: a request either returns the exact serial-reference
// solution, or one of the typed admission errors (ErrOverloaded,
// ErrCancelled) — never an untyped failure, never a wrong element,
// and the subsequent graceful Close never deadlocks or leaks.

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"gputrid/internal/workload"
)

func FuzzPoolAdmission(f *testing.F) {
	f.Add(uint32(1), uint8(4), uint8(64), []byte{0, 1, 2, 3})
	f.Add(uint32(2), uint8(1), uint8(200), []byte{3, 3, 3, 0, 0, 0, 0, 0})
	f.Add(uint32(3), uint8(8), uint8(96), []byte{2, 2, 2, 2, 1})
	f.Add(uint32(4), uint8(2), uint8(33), []byte{0})
	f.Fuzz(func(t *testing.T, seed uint32, mRaw, nRaw uint8, sched []byte) {
		m := int(mRaw)%8 + 1
		n := int(nRaw)%160 + 1
		if len(sched) > 24 {
			sched = sched[:24]
		}
		if len(sched) == 0 {
			return
		}
		b := workload.Batch[float64](workload.DiagDominant, m, n, uint64(seed)+11)
		ref, err := SolveBatch(b)
		if err != nil {
			t.Fatalf("reference m=%d n=%d: %v", m, n, err)
		}

		p := NewPool[float64](PoolConfig{Capacity: 1, QueueLimit: 2})
		var wg sync.WaitGroup
		errs := make([]error, len(sched))
		results := make([][]float64, len(sched))
		for i, op := range sched {
			wg.Add(1)
			go func(i int, op byte) {
				defer wg.Done()
				ctx := context.Background()
				var cancel context.CancelFunc
				switch op % 4 {
				case 1: // generous deadline
					ctx, cancel = context.WithTimeout(ctx, 30*time.Second)
				case 2: // hopeless deadline
					ctx, cancel = context.WithTimeout(ctx, time.Duration(op)*time.Microsecond)
				case 3: // cancelled mid-flight
					ctx, cancel = context.WithCancel(ctx)
					go func(c context.CancelFunc) {
						time.Sleep(time.Duration(op) * 3 * time.Microsecond)
						c()
					}(cancel)
				}
				if cancel != nil {
					defer cancel()
				}
				res, err := p.Solve(ctx, b)
				errs[i] = err
				if err == nil {
					results[i] = res.X
				}
			}(i, op)
		}
		wg.Wait()

		for i, err := range errs {
			if err != nil {
				if !errors.Is(err, ErrOverloaded) && !errors.Is(err, ErrCancelled) {
					t.Fatalf("op %d (%d): untyped error %v", i, sched[i], err)
				}
				continue
			}
			if len(results[i]) != m*n {
				t.Fatalf("op %d: |x| = %d, want %d", i, len(results[i]), m*n)
			}
			for j, v := range results[i] {
				if v != ref.X[j] {
					t.Fatalf("op %d: x[%d] = %v, serial reference %v (partial or corrupt write)",
						i, j, v, ref.X[j])
				}
			}
		}

		// Drain must complete cleanly: nothing is in flight anymore.
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := p.Close(ctx); err != nil {
			t.Fatalf("close after schedule: %v", err)
		}
		if s := p.Stats(); s.InFlight != 0 || s.QueueDepth != 0 {
			t.Fatalf("pool did not settle: %+v", s)
		}
	})
}
