package gputrid

import (
	"context"
	"fmt"
	"time"

	"gputrid/internal/core"
	"gputrid/internal/guard"
)

// Typed errors of the reusable Solver, matchable with errors.Is through
// the "gputrid:"-prefixed wrappers the methods return.
var (
	// ErrSolverBusy reports a SolveBatchInto that overlapped another
	// call on the same Solver. The Solver stays fully usable; no state
	// was touched. Distinct Solvers may always run concurrently.
	ErrSolverBusy = core.ErrPipelineBusy
	// ErrSolverClosed reports a call after Close.
	ErrSolverClosed = core.ErrPipelineClosed
	// ErrShapeMismatch reports a batch or destination whose shape does
	// not match the one the Solver was built for.
	ErrShapeMismatch = core.ErrShapeMismatch
)

// Solver is a reusable solver for one fixed batch shape (M systems of
// N rows each). NewSolver pre-allocates every scratch buffer the
// hybrid pipeline needs — device arrays, sliding-window rings,
// p-Thomas workspaces, interleave planes — so a warmed Solver runs
// SolveBatchInto with zero steady-state heap allocations.
//
// The simulated device events recorded in Stats are a pure function of
// the shape and configuration, not of the coefficient values, so the
// Solver records them on its first solve only; later solves replay the
// data arithmetic with event recording disabled (sharded across a
// bounded worker pool, see WithWorkers) and reuse the cached Stats.
// Results are bitwise identical to the one-shot SolveBatch either way.
//
// A Solver is not safe for concurrent use: overlapping calls return
// ErrSolverBusy (never corrupt state). Distinct Solvers are
// independent and safe to use from different goroutines.
//
// The fused (WithKernelFusion) and multiplexed (WithSystemsPerBlock)
// configurations keep their one-shot kernel implementations and
// allocate per solve; the zero-allocation guarantee covers the default
// hybrid and the k = 0 paths.
type Solver[T Real] struct {
	c    config
	m, n int
	pipe *core.Pipeline[T]
	// resid is the verification scratch, allocated only under
	// WithVerification so the plain path stays allocation-free; iresid
	// is the interleaved scan's extra partials, built on first use.
	resid  []float64
	iresid []float64
	// runner is the guarded pipeline, built on first SolveGuarded.
	runner *guard.Runner[T]
	gres   GuardedResult[T]
	gresu  Result[T]
}

// NewSolver builds a reusable solver for batches of m systems of n
// rows, applying the same options as SolveBatch plus WithWorkers.
// Callers that solve many same-shaped batches (time stepping, ADI
// sweeps) should build one Solver and reuse it; one-shot callers can
// stay with SolveBatch, which wraps a transient pipeline.
func NewSolver[T Real](m, n int, opts ...Option) (*Solver[T], error) {
	c := buildConfig(opts)
	p, err := core.NewPipeline[T](c.coreConfig(), m, n)
	if err != nil {
		return nil, fmt.Errorf("gputrid: %w", err)
	}
	s := &Solver[T]{c: c, m: m, n: n, pipe: p}
	if c.verify {
		s.resid = make([]float64, m)
	}
	return s, nil
}

// SolveBatchInto solves every system of the batch into dst (natural
// order: row j of system i at dst[i*N+j]), which must have length M*N.
// After the first (recording) solve it performs no heap allocations.
//
// Unlike SolveBatch it does not run the O(M·N) input Validate pass;
// non-finite coefficients propagate into the solution. Callers wanting
// the check can enable WithVerification (which validates the output
// residuals from a pre-allocated scratch) or use SolveGuarded.
func (s *Solver[T]) SolveBatchInto(dst []T, b *Batch[T]) error {
	if err := s.pipe.SolveInto(dst, b); err != nil {
		return fmt.Errorf("gputrid: %w", err)
	}
	if s.resid != nil {
		return verifyBatchInto(b, dst, s.resid)
	}
	return nil
}

// SolveBatchIntoCtx is SolveBatchInto with cooperative cancellation and
// transient-fault recovery. Once ctx is done the solve stops promptly
// — between kernel blocks and during retry backoff waits — with no
// goroutine leaks, returning an error matching both ErrCancelled and
// the context's own error; dst is written at whole-system granularity,
// so every healthy system's rows are either fully written or untouched.
// With a fault-injecting device (WithFaultInjection), transient
// LaunchErrors are retried per WithRetry and the recovered solution is
// bitwise identical to a fault-free solve; systems that exhaust the
// budget degrade to the host pivoting path (inspect FaultReport), or
// fail with ErrFaulted under RetryPolicy.NoDegrade. An uncancellable
// context (Background, TODO, nil) with a fault-free device takes the
// zero-overhead fast path — identical to SolveBatchInto.
func (s *Solver[T]) SolveBatchIntoCtx(ctx context.Context, dst []T, b *Batch[T]) error {
	if err := s.pipe.SolveIntoCtx(ctx, dst, b); err != nil {
		return fmt.Errorf("gputrid: %w", err)
	}
	if s.resid != nil {
		return verifyBatchInto(b, dst, s.resid)
	}
	return nil
}

// SolveInterleavedInto solves a batch already in the interleaved
// layout (row j of system i at j*M+i), writing the solution into xi
// interleaved the same way. On the k = 0 path the kernels consume the
// caller's planes directly — the 32×32 blocked transpose the
// contiguous entry pays never runs — and after the first solve the
// call performs no heap allocations. Results are bitwise identical to
// SolveBatchInto on the same data in the contiguous layout; the
// batching front-end builds its megabatches in this layout so
// appending a request is a strided copy and the solve is
// conversion-free end to end. LayoutStats reports the skipped
// transposes.
//
// xi must not alias v's slices. Configurations that cannot consume
// the layout natively (k >= 1, fused/multiplexed) convert through an
// internal scratch — correct, but no faster than SolveBatchInto.
func (s *Solver[T]) SolveInterleavedInto(xi []T, v *Interleaved[T]) error {
	return s.SolveInterleavedIntoCtx(context.Background(), xi, v)
}

// SolveInterleavedIntoCtx is SolveInterleavedInto with cooperative
// cancellation and transient-fault recovery (see SolveBatchIntoCtx).
// One divergence from the contiguous entry: the k = 0 kernels write
// xi in place, so a cancelled solve may leave xi partially written —
// treat xi as garbage unless the call returned nil.
func (s *Solver[T]) SolveInterleavedIntoCtx(ctx context.Context, xi []T, v *Interleaved[T]) error {
	if err := s.pipe.SolveInterleavedIntoCtx(ctx, xi, v); err != nil {
		return fmt.Errorf("gputrid: %w", err)
	}
	if s.resid != nil {
		if s.iresid == nil {
			s.iresid = make([]float64, 3*s.m)
		}
		return verifyInterleavedInto(v, xi, s.resid, s.iresid)
	}
	return nil
}

// LayoutStats reports how solves entered the Solver — contiguous vs
// interleaved-native — and how many blocked transposes the native
// path skipped. It is the observable evidence behind the batching
// bench numbers; safe to call concurrently with solves.
func (s *Solver[T]) LayoutStats() LayoutStats { return s.pipe.LayoutStats() }

// FaultReport describes the fault-recovery activity of the Solver's
// most recent solve: nil when nothing fired (fault-free solves, and
// the fused/multiplexed fallback configurations, which have no
// recovery layer), otherwise the retry/degradation/wasted-time
// accounting of that solve. The report aliases the Solver's arena —
// read it before the next solve resets it.
func (s *Solver[T]) FaultReport() *FaultReport {
	return faultsOf(s.pipe.Report())
}

// SolveGuarded runs the guarded pipeline (see the package-level
// SolveGuarded) through the Solver's reusable machinery: the bulk fast
// path and the per-system residual scan are allocation-free, with only
// the escalation rungs for failing systems allocating. The returned
// result aliases the Solver's arenas and is valid until the next
// SolveGuarded call or Close.
func (s *Solver[T]) SolveGuarded(b *Batch[T]) (*GuardedResult[T], error) {
	return s.SolveGuardedCtx(context.Background(), b)
}

// SolveGuardedCtx is SolveGuarded with cooperative cancellation and
// transient-fault recovery (see SolveBatchIntoCtx). A cancelled solve
// returns a nil result with an error matching ErrCancelled. Systems
// the recovery layer degraded to the host pivoting path appear in the
// per-system reports as StagePivot.
func (s *Solver[T]) SolveGuardedCtx(ctx context.Context, b *Batch[T]) (*GuardedResult[T], error) {
	if s.runner == nil {
		r, err := guard.NewRunner[T](s.c.coreConfig(), s.m, s.n)
		if err != nil {
			return nil, fmt.Errorf("gputrid: %w", err)
		}
		s.runner = r
	}
	var pol GuardPolicy
	if s.c.guard != nil {
		pol = *s.c.guard
	}
	start := time.Now()
	gres, err := s.runner.SolveCtx(ctx, b, pol)
	if gres == nil {
		return nil, fmt.Errorf("gputrid: %w", err)
	}
	wall := time.Since(start)
	rep := gres.FastReport
	s.gresu = Result[T]{
		X:               gres.X,
		K:               rep.K,
		BlocksPerSystem: rep.BlocksPerSystem,
		Fused:           rep.Fused,
		Stats:           rep.Stats,
		ModeledTime:     secondsToDuration(modeled[T](s.c.device, rep)),
		WallTime:        wall,
		Faults:          faultsOf(rep),
	}
	s.gres = GuardedResult[T]{Result: &s.gresu, Reports: gres.Reports, Failed: gres.Failed}
	if err != nil {
		err = fmt.Errorf("gputrid: %w", err)
	}
	return &s.gres, err
}

// Shape returns the fixed (M, N) the Solver was built for.
func (s *Solver[T]) Shape() (m, n int) { return s.m, s.n }

// K returns the resolved number of PCR steps.
func (s *Solver[T]) K() int { return s.pipe.K() }

// BlocksPerSystem returns the resolved Fig. 11 front-end block mapping.
func (s *Solver[T]) BlocksPerSystem() int { return s.pipe.Report().BlocksPerSystem }

// Workers returns the size of the replay worker pool.
func (s *Solver[T]) Workers() int { return s.pipe.Workers() }

// Stats returns the recorded device events of a solve at this shape
// (identical for every solve; zero before the first one).
func (s *Solver[T]) Stats() *Stats { return s.pipe.Report().Stats }

// ModeledTime returns the cost model's execution-time estimate for the
// kernels of one solve; valid after the first solve.
func (s *Solver[T]) ModeledTime() time.Duration {
	return secondsToDuration(modeled[T](s.c.device, s.pipe.Report()))
}

// LastSolveTime returns the measured host duration of the Solver's
// most recent solve (zero before the first one). The serving Pool
// feeds it to its per-shape service-time EWMA for deadline-aware
// admission control.
func (s *Solver[T]) LastSolveTime() time.Duration { return s.pipe.LastSolveTime() }

// Close releases the worker pools. Subsequent solves return
// ErrSolverClosed; Close is idempotent (repeat calls return nil). A
// Close racing an in-flight solve does not tear the solve down: it
// returns an error matching ErrSolverBusy and leaves the Solver fully
// usable — call Close again once the solve has returned (or cancel it
// first via SolveBatchIntoCtx's context).
func (s *Solver[T]) Close() error {
	err := s.pipe.Close()
	if s.runner != nil {
		if rerr := s.runner.Close(); err == nil {
			err = rerr
		}
	}
	if err != nil {
		return fmt.Errorf("gputrid: %w", err)
	}
	return nil
}
