package gputrid

import (
	"math"
	"strings"
	"testing"

	"gputrid/internal/matrix"
	"gputrid/internal/workload"
)

func TestSolveSingleSystem(t *testing.T) {
	s := workload.System[float64](workload.DiagDominant, 500, 1)
	res, err := Solve(s, WithVerification())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.X) != 500 {
		t.Fatalf("X length %d", len(res.X))
	}
	if res.K == 0 {
		t.Error("single system should use PCR front-end")
	}
	if res.ModeledTime <= 0 || res.WallTime <= 0 {
		t.Errorf("times: modeled %v wall %v", res.ModeledTime, res.WallTime)
	}
	if err := matrix.CheckSolution(s, res.X); err != nil {
		t.Error(err)
	}
}

func TestSolveBatchDefaults(t *testing.T) {
	b := workload.Batch[float64](workload.DiagDominant, 64, 256, 2)
	res, err := SolveBatch(b)
	if err != nil {
		t.Fatal(err)
	}
	if r := Residual(b, res.X); r > matrix.ResidualTolerance[float64](256) {
		t.Errorf("residual %g", r)
	}
	if res.K != 6 { // Table III: 32 <= M < 512 -> 6
		t.Errorf("auto K = %d, want 6", res.K)
	}
	if res.Stats == nil || res.Stats.Eliminations == 0 {
		t.Error("stats missing")
	}
}

func TestSolveOptions(t *testing.T) {
	b := workload.Batch[float64](workload.DiagDominant, 4, 512, 3)
	res, err := SolveBatch(b, WithK(5), WithSubTileScale(2), WithBlocksPerSystem(2), WithDevice(GTX480()))
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 5 || res.BlocksPerSystem != 2 {
		t.Errorf("options not honored: %+v", res)
	}
}

func TestSolveFusionOption(t *testing.T) {
	b := workload.Batch[float64](workload.DiagDominant, 2, 512, 4)
	res, err := SolveBatch(b, WithK(5), WithKernelFusion(), WithVerification())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Fused {
		t.Error("fusion not reported")
	}
}

func TestSolveInterleavedRoundTrip(t *testing.T) {
	m, n := 10, 64
	v := workload.Interleaved[float64](workload.DiagDominant, m, n, 5)
	res, err := SolveInterleaved(v)
	if err != nil {
		t.Fatal(err)
	}
	// Verify against the contiguous solve of the same data.
	b := v.ToBatch()
	want, err := SolveBatch(b)
	if err != nil {
		t.Fatal(err)
	}
	back := matrix.DeinterleaveVector(res.X, m, n)
	if d := matrix.MaxAbsDiff(back, want.X); d != 0 {
		t.Errorf("interleaved solve differs by %g", d)
	}
}

func TestSolveCPUBaseline(t *testing.T) {
	b := workload.Batch[float64](workload.DiagDominant, 8, 100, 6)
	x, err := SolveCPU(b)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SolveBatch(b)
	if err != nil {
		t.Fatal(err)
	}
	if d := matrix.MaxRelDiff(x, res.X); d > 1e-9 {
		t.Errorf("CPU and GPU paths differ by %g", d)
	}
}

func TestValidationRejectsBadInput(t *testing.T) {
	b := NewBatch[float64](2, 4)
	for i := range b.Diag {
		b.Diag[i] = 1
	}
	b.RHS[5] = math.Inf(1)
	if _, err := SolveBatch(b); err == nil || !strings.Contains(err.Error(), "invalid batch") {
		t.Errorf("invalid batch accepted: %v", err)
	}
}

func TestVerificationCatchesGarbage(t *testing.T) {
	// A non-dominant system with a zero pivot path produces NaNs in the
	// non-pivoting solver; WithVerification must catch it.
	b := NewBatch[float64](1, 8)
	for i := 0; i < 8; i++ {
		b.Diag[i] = 0.0 // singular
		b.RHS[i] = 1
	}
	// Make it structurally valid (finite) but singular.
	if _, err := SolveBatch(b, WithVerification()); err == nil {
		t.Error("singular system passed verification")
	}
}

func TestFloat32API(t *testing.T) {
	b := workload.Batch[float32](workload.DiagDominant, 4, 128, 7)
	res, err := SolveBatch(b, WithVerification())
	if err != nil {
		t.Fatal(err)
	}
	if res.ModeledTime <= 0 {
		t.Error("modeled time missing")
	}
}
