package gputrid

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"gputrid/internal/clock"
	"gputrid/internal/workload"
)

// batcherWaitUntil polls cond with a wall-clock timeout, sequencing
// tests against the batcher's flusher before advancing a virtual
// clock.
func batcherWaitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(50 * time.Microsecond)
	}
}

// TestBatcherBitwiseHammer races 64 goroutines of small mixed-size
// requests through the coalescing front-end and requires every
// solution to be bitwise identical to the same batch solved alone on
// the per-request k = 0 path — the coalesced-equals-serial guarantee
// the batching tier is built on.
func TestBatcherBitwiseHammer(t *testing.T) {
	p := NewPool[float64](PoolConfig{Capacity: 2})
	defer p.Close(context.Background())
	b, err := NewBatcher(p, BatcherConfig{MaxBatch: 16, MaxWait: 200 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	const n = 32
	var wg sync.WaitGroup
	for g := 0; g < 64; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 6; iter++ {
				m := 1 + (g+iter)%3
				batch := workload.Batch[float64](workload.DiagDominant, m, n, uint64(g*100+iter))
				ref, err := SolveBatch(batch, WithK(0))
				if err != nil {
					t.Errorf("g%d iter%d reference: %v", g, iter, err)
					return
				}
				var x []float64
				var res CoalescedResult
				for {
					x, res, err = b.Solve(context.Background(), batch)
					if !errors.Is(err, ErrBatcherSaturated) {
						break
					}
					time.Sleep(200 * time.Microsecond)
				}
				if err != nil {
					t.Errorf("g%d iter%d batched: %v", g, iter, err)
					return
				}
				if res.Systems != m || res.FlushSize < m {
					t.Errorf("g%d iter%d: implausible coalescing report %+v", g, iter, res)
					return
				}
				for i := range x {
					if x[i] != ref.X[i] {
						t.Errorf("g%d iter%d: coalesced result differs from serial at %d: %v vs %v",
							g, iter, i, x[i], ref.X[i])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	st := b.Stats()
	if st.AdmittedSystems == 0 || st.Flushes() == 0 {
		t.Fatalf("hammer produced no batching activity: %+v", st)
	}
	if st.MaxFlushSystems < 2 {
		t.Fatalf("MaxFlushSystems = %d: the hammer never actually coalesced", st.MaxFlushSystems)
	}
}

// TestBatcherFaultIsolation coalesces three requests into one flight:
// a healthy one, one whose system p-Thomas cannot solve but host
// pivoting can (rescued), and one truly singular (unsolvable). Each
// gets exactly its own verdict — the corrupt systems degrade or fail
// only the requests that submitted them.
func TestBatcherFaultIsolation(t *testing.T) {
	p := NewPool[float64](PoolConfig{})
	defer p.Close(context.Background())
	vc := clock.NewVirtualClock(time.Unix(0, 0))
	b, err := NewBatcher(p, BatcherConfig{MaxBatch: 8, MaxWait: time.Hour, Clock: vc})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	const n = 2
	healthy := workload.Batch[float64](workload.DiagDominant, 1, n, 7)
	ref, err := SolveBatch(healthy, WithK(0))
	if err != nil {
		t.Fatal(err)
	}
	// Permutation matrix [[0,1],[1,0]]: nonsingular, but the
	// pivot-free p-Thomas divides by the zero diagonal — only the
	// host rescue can solve it. x = (rhs[1], rhs[0]).
	rescuable := &Batch[float64]{
		M: 1, N: n,
		Lower: []float64{0, 1}, Diag: []float64{0, 0},
		Upper: []float64{1, 0}, RHS: []float64{3, 5},
	}
	// The zero matrix: singular, beyond any rescue.
	unsolvable := &Batch[float64]{
		M: 1, N: n,
		Lower: make([]float64, n), Diag: make([]float64, n),
		Upper: make([]float64, n), RHS: []float64{1, 1},
	}

	var wg sync.WaitGroup
	type out struct {
		x   []float64
		res CoalescedResult
		err error
	}
	outs := make([]out, 3)
	for i, batch := range []*Batch[float64]{healthy, rescuable, unsolvable} {
		wg.Add(1)
		go func(i int, batch *Batch[float64]) {
			defer wg.Done()
			o := &outs[i]
			o.x, o.res, o.err = b.Solve(context.Background(), batch)
		}(i, batch)
	}
	batcherWaitUntil(t, "three requests parked", func() bool {
		return b.Stats().PendingSystems == 3
	})
	vc.Advance(time.Hour)
	wg.Wait()

	if outs[0].err != nil {
		t.Fatalf("healthy request failed alongside corrupt neighbors: %v", outs[0].err)
	}
	if outs[0].res.FlushSize != 3 {
		t.Fatalf("FlushSize = %d, want 3 (one coalesced flight)", outs[0].res.FlushSize)
	}
	for i := range outs[0].x {
		if outs[0].x[i] != ref.X[i] {
			t.Fatalf("healthy result corrupted at %d: %v vs %v", i, outs[0].x[i], ref.X[i])
		}
	}
	if outs[1].err != nil {
		t.Fatalf("rescuable request failed: %v", outs[1].err)
	}
	if outs[1].res.Rescued != 1 {
		t.Fatalf("rescuable request reports %d rescues, want 1", outs[1].res.Rescued)
	}
	if outs[1].x[0] != 5 || outs[1].x[1] != 3 {
		t.Fatalf("rescued solution = %v, want [5 3]", outs[1].x)
	}
	if outs[2].err == nil {
		t.Fatal("singular request succeeded")
	}
	if outs[0].res.Rescued != 0 {
		t.Fatalf("healthy request reports %d rescues", outs[0].res.Rescued)
	}
}

// TestBatcherBypassesOversized pins the routing rule: a request
// larger than MaxBatch goes straight to the pool's direct path
// instead of failing admission.
func TestBatcherBypassesOversized(t *testing.T) {
	p := NewPool[float64](PoolConfig{})
	defer p.Close(context.Background())
	b, err := NewBatcher(p, BatcherConfig{MaxBatch: 4, MaxWait: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	batch := workload.Batch[float64](workload.DiagDominant, 9, 64, 3)
	ref, err := SolveBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	x, res, err := b.Solve(context.Background(), batch)
	if err != nil {
		t.Fatal(err)
	}
	if res.Systems != 9 || res.FlushSize != 9 {
		t.Fatalf("bypass report = %+v, want 9/9", res)
	}
	for i := range x {
		if x[i] != ref.X[i] {
			t.Fatalf("bypass result differs at %d", i)
		}
	}
	if st := b.Stats(); st.Admitted != 0 {
		t.Fatalf("oversized request was coalesced: %+v", st)
	}
}

// TestSolverInterleavedSkipsTranspose is the public stats assertion
// behind the batching bench: the interleaved-native entry at k = 0
// performs the solve without any of the five blocked transposes
// (4 coefficient planes in, 1 solution plane out) the contiguous
// entry pays, and the contiguous API keeps working alongside.
func TestSolverInterleavedSkipsTranspose(t *testing.T) {
	m, n := 16, 64
	s, err := NewSolver[float64](m, n, WithK(0))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	b := workload.Batch[float64](workload.DiagDominant, m, n, 11)
	v := b.ToInterleaved()
	xi := make([]float64, m*n)
	for iter := 0; iter < 3; iter++ {
		if err := s.SolveInterleavedInto(xi, v); err != nil {
			t.Fatal(err)
		}
	}
	ls := s.LayoutStats()
	if ls.InterleavedSolves != 3 || ls.TransposesSkipped != 15 || ls.InterleavedShim != 0 {
		t.Fatalf("LayoutStats = %+v, want 3 native solves skipping 15 transposes", ls)
	}
	// The contiguous entry still works on the same solver and adds no
	// skipped-transpose credit.
	dst := make([]float64, m*n)
	if err := s.SolveBatchInto(dst, b); err != nil {
		t.Fatal(err)
	}
	if ls := s.LayoutStats(); ls.TransposesSkipped != 15 {
		t.Fatalf("contiguous solve changed TransposesSkipped to %d", ls.TransposesSkipped)
	}
}

// TestBatcherFallbackRoute forces the breaker open and checks the
// coalesced path degrades to per-system host solves with verdicts
// instead of failing the flight.
func TestBatcherFallbackRoute(t *testing.T) {
	p := NewPool[float64](PoolConfig{
		// A hair-trigger breaker: one degraded solve trips it.
		Breaker: BreakerPolicy{Window: 4, MinSamples: 1, TripRatio: 0.01, Cooldown: time.Hour},
		SolverOptions: []Option{
			WithFaultInjection(&FaultInjector{
				Seed: 3, Rate: 1, Repeat: 1000,
				Kinds: []DeviceFaultKind{FaultAbort},
			}),
			WithRetry(RetryPolicy{MaxRetries: 1, BaseBackoff: time.Microsecond, MaxBackoff: time.Microsecond}),
		},
	})
	defer p.Close(context.Background())

	// Trip the breaker on the direct path.
	batch := workload.Batch[float64](workload.DiagDominant, 4, 32, 5)
	if _, err := p.Solve(context.Background(), batch); err != nil {
		t.Fatalf("tripping solve: %v", err)
	}
	if p.Breaker().State != BreakerOpen {
		t.Fatalf("breaker = %v, want open", p.Breaker().State)
	}

	vc := clock.NewVirtualClock(time.Unix(0, 0))
	b, err := NewBatcher(p, BatcherConfig{MaxBatch: 8, MaxWait: time.Hour, Clock: vc})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	req := workload.Batch[float64](workload.DiagDominant, 2, 32, 6)
	var (
		wg   sync.WaitGroup
		x    []float64
		serr error
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		x, _, serr = b.Solve(context.Background(), req)
	}()
	batcherWaitUntil(t, "request parked", func() bool { return b.Stats().PendingSystems == 2 })
	vc.Advance(time.Hour)
	wg.Wait()
	if serr != nil {
		t.Fatalf("breaker-open coalesced solve: %v", serr)
	}
	// Host pivoting answers differ in rounding from p-Thomas, so
	// verify by residual, not bitwise.
	if err := verifyBatchInto(req, x, make([]float64, req.M)); err != nil {
		t.Fatalf("fallback solution fails verification: %v", err)
	}
	if st := p.Stats(); st.FallbackSolves == 0 {
		t.Fatal("no fallback solves recorded")
	}
}
